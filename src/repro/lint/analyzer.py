"""Two-phase analysis driver: per-file pass, fact join, program rules.

Phase 1 visits every file exactly once: a single :func:`ast.parse` feeds
both the per-file AST rules and the fact extractor.  Per-file results
are memoized twice — in-process (:mod:`repro.lint.walker`'s cache) and,
when ``cache_path`` is given, in an on-disk JSON cache keyed by content
hash + rules/facts version, so repeated CLI runs only re-analyze files
that actually changed.  With ``jobs > 1`` the uncached files fan out
over a ``multiprocessing`` pool; results are merged back in sorted-path
order so the output is byte-identical regardless of worker scheduling.

Phase 2 joins every module's facts into a :class:`repro.lint.facts.Program`
and runs the whole-program rules (S/C/T families).  Program-rule
findings are suppressed through the *flagged file's* pragma table, which
travels inside the facts so phase 2 never re-reads source.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from .facts import FACTS_VERSION, ModuleFacts, Program
from .pragmas import PragmaTable
from .rules import ALL_PROGRAM_RULES, RULES_VERSION
from .rules.base import Finding, Rule

#: On-disk cache format identifier (not a repro data schema).
CACHE_SCHEMA = "kyotolint.facts-cache/1"


def _finding_record(finding: Finding) -> Dict[str, Any]:
    record = finding.to_dict()
    record["end_line"] = finding.end_line
    return record


def _finding_from_record(record: Dict[str, Any]) -> Finding:
    finding = Finding.from_dict(record)
    finding.end_line = int(record.get("end_line", 0))
    return finding


def _analyze_one(path: str) -> Dict[str, Any]:
    """Pool worker: full phase-1 analysis of one file, as plain JSON."""
    from . import walker

    text = pathlib.Path(path).read_text(encoding="utf-8")
    findings, facts = walker.analyze_source(text, path=path)
    return {
        "path": path,
        "hash": walker.content_hash(text),
        "findings": [_finding_record(f) for f in findings],
        "facts": facts.to_dict(),
    }


def _load_cache(cache_path: Optional[str]) -> Dict[str, Any]:
    """Load the on-disk facts cache; any mismatch discards it wholesale."""
    if cache_path is None:
        return {}
    try:
        data = json.loads(pathlib.Path(cache_path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if (
        not isinstance(data, dict)
        or data.get("schema") != CACHE_SCHEMA
        or data.get("rules_version") != RULES_VERSION
        or data.get("facts_version") != FACTS_VERSION
    ):
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(
    cache_path: Optional[str], files: Dict[str, Any]
) -> None:
    if cache_path is None:
        return
    payload = {
        "schema": CACHE_SCHEMA,
        "rules_version": RULES_VERSION,
        "facts_version": FACTS_VERSION,
        "files": files,
    }
    try:
        pathlib.Path(cache_path).write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        pass  # a cache that cannot be written is just a cache miss later


def _phase1(
    files: List[str],
    jobs: int,
    cache_path: Optional[str],
) -> Tuple[Dict[str, List[Finding]], List[ModuleFacts]]:
    """Analyze every file once, via disk cache, pool, or in-process."""
    from . import walker

    disk_cache = _load_cache(cache_path)
    next_cache: Dict[str, Any] = {}
    per_file: Dict[str, List[Finding]] = {}
    facts_by_file: Dict[str, ModuleFacts] = {}
    misses: List[str] = []

    for path in files:
        norm = walker.normalize_path(path)
        try:
            text = pathlib.Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        digest = walker.content_hash(text)
        entry = disk_cache.get(norm)
        if isinstance(entry, dict) and entry.get("hash") == digest:
            per_file[path] = [
                _finding_from_record(r) for r in entry["findings"]
            ]
            facts_by_file[path] = ModuleFacts.from_dict(entry["facts"])
            next_cache[norm] = entry
        else:
            misses.append(path)

    if jobs > 1 and len(misses) > 1:
        import multiprocessing

        with multiprocessing.Pool(processes=jobs) as pool:
            worker_results = list(pool.imap(_analyze_one, misses))
        for result in worker_results:
            path = result["path"]
            per_file[path] = [
                _finding_from_record(r) for r in result["findings"]
            ]
            facts_by_file[path] = ModuleFacts.from_dict(result["facts"])
            next_cache[walker.normalize_path(path)] = {
                "hash": result["hash"],
                "findings": result["findings"],
                "facts": result["facts"],
            }
    else:
        for path in misses:
            findings, facts = walker.analyze_file(path)
            per_file[path] = findings
            facts_by_file[path] = facts
            text = pathlib.Path(path).read_text(encoding="utf-8")
            next_cache[walker.normalize_path(path)] = {
                "hash": walker.content_hash(text),
                "findings": [_finding_record(f) for f in findings],
                "facts": facts.to_dict(),
            }

    _save_cache(cache_path, next_cache)
    ordered_facts = [facts_by_file[path] for path in files if path in facts_by_file]
    return per_file, ordered_facts


def _phase2(modules: List[ModuleFacts]) -> List[Finding]:
    """Run every whole-program rule over the joined fact base."""
    program = Program(modules)
    tables: Dict[str, PragmaTable] = {
        facts.path: PragmaTable.from_dict(facts.pragmas)
        for facts in program.modules
    }
    findings: List[Finding] = []
    for rule_class in ALL_PROGRAM_RULES:
        for finding in rule_class().check(program):
            table = tables.get(finding.path)
            if table is not None and table.is_suppressed(
                finding.rule_id, finding.line, finding.end_line
            ):
                continue
            findings.append(finding)
    return findings


def analyze_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[Type[Rule]]] = None,
    jobs: int = 1,
    cache_path: Optional[str] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` with both phases.

    Passing explicit ``rules`` restricts phase 1 to those rules and
    skips phase 2 entirely (single-rule testing mode); the disk cache is
    bypassed in that mode because its entries assume the full rule set.
    """
    from . import walker

    files = walker.iter_python_files(str(p) for p in paths)
    findings: List[Finding] = []
    if rules is not None:
        for path in files:
            file_findings, _ = walker.analyze_file(path, rules=rules)
            findings.extend(file_findings)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    per_file, modules = _phase1(files, max(1, jobs), cache_path)
    for path in files:
        findings.extend(per_file.get(path, []))
    findings.extend(_phase2(modules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
