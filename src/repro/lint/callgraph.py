"""Lightweight cross-module call graph over extracted facts.

Nodes are ``"module:qualname"`` strings for every function the fact
extractor saw; edges come from the per-function call records, resolved
through each module's import bindings.  Resolution is deliberately
conservative — it follows name/attribute chains, ``from x import y``
bindings and re-export chains (``repro.telemetry`` re-exporting
``recording`` from ``repro.telemetry.recorder``), and gives up on
anything dynamic.  An unresolvable call simply contributes no edge, so
reachability under-approximates: the C-rules may miss exotic flows but
never invent them.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

if TYPE_CHECKING:  # break the facts -> rules -> callgraph import cycle
    from .facts import ModuleFacts, Program

#: Re-export chains longer than this are cycles or pathological; stop.
_MAX_REEXPORT_DEPTH = 8


def node_id(module: str, qualname: str) -> str:
    return f"{module}:{qualname}"


class CallGraph:
    """Function-level call graph with BFS reachability."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.edges: Dict[str, Set[str]] = {}
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        for facts in self.program.modules:
            for call in facts.calls:
                caller = call["caller"]
                if caller == "<module>":
                    continue
                source = node_id(facts.module, caller)
                target = self.resolve_call(facts, call["parts"])
                if target is not None:
                    self.edges.setdefault(source, set()).add(target)

    def resolve_symbol(
        self, module: str, name: str, depth: int = 0
    ) -> Optional[str]:
        """Resolve ``module.name`` to a function node, following re-exports."""
        if depth > _MAX_REEXPORT_DEPTH:
            return None
        facts = self.program.by_module.get(module)
        if facts is None:
            return None
        if name in facts.functions and not facts.functions[name]["nested"]:
            return node_id(module, name)
        if name in facts.from_imports:
            target_module, original = facts.from_imports[name]
            resolved = self.resolve_symbol(target_module, original, depth + 1)
            if resolved is not None:
                return resolved
            # `from package import submodule` style re-export.
            submodule = f"{target_module}.{original}"
            if submodule in self.program.by_module:
                return None
        return None

    def resolve_call(
        self, facts: ModuleFacts, parts: Sequence[str]
    ) -> Optional[str]:
        """Resolve one dotted call target from inside ``facts``'s module."""
        if not parts:
            return None
        head = parts[0]
        # Same-module function or re-exported name.
        if len(parts) == 1:
            return self.resolve_symbol(facts.module, head)
        # `self.method()` / `cls.method()`: approximate with any same-module
        # method of that name (methods are unique per module in practice).
        if head in ("self", "cls") and len(parts) == 2:
            for qualname, record in facts.functions.items():
                if record["name"] == parts[1] and "." in qualname:
                    return node_id(facts.module, qualname)
            return None
        # `alias.attr...` through a module import.
        if head in facts.imports:
            base = facts.imports[head]
            module = ".".join([base] + list(parts[1:-1]))
            resolved = self.resolve_symbol(module, parts[-1])
            if resolved is not None:
                return resolved
            return None
        # `name.attr()` where `name` was from-imported and is a module.
        if head in facts.from_imports:
            target_module, original = facts.from_imports[head]
            submodule = f"{target_module}.{original}"
            module = ".".join([submodule] + list(parts[1:-1]))
            return self.resolve_symbol(module, parts[-1])
        return None

    # -- queries ----------------------------------------------------------

    def function_record(self, node: str) -> Optional[Dict[str, object]]:
        module, _, qualname = node.partition(":")
        facts = self.program.by_module.get(module)
        if facts is None:
            return None
        return facts.functions.get(qualname)

    def reachable(self, entry: str) -> Dict[str, Optional[str]]:
        """BFS from ``entry``; maps each reached node to its BFS parent."""
        parents: Dict[str, Optional[str]] = {entry: None}
        queue = deque([entry])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(self.edges.get(current, ())):
                if neighbor not in parents:
                    parents[neighbor] = current
                    queue.append(neighbor)
        return parents

    @staticmethod
    def chain(parents: Dict[str, Optional[str]], node: str) -> List[str]:
        """The entry -> ... -> node path recorded by :meth:`reachable`."""
        path = [node]
        seen = {node}
        while True:
            parent = parents.get(path[-1])
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        return list(reversed(path))


def pretty_chain(nodes: Sequence[str]) -> str:
    """Human form of a call chain: strip module prefixes where unambiguous."""
    return " -> ".join(node.split(":", 1)[-1] for node in nodes)
