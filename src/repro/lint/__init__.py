"""kyotolint: repo-specific static analysis plus runtime contracts.

The reproduction's credibility rests on two properties no general-purpose
linter checks: **determinism** (every stochastic stream derives from
``(seed, name)``; nothing reads the wall clock or leaks set order into
results) and **unit correctness** (equation 1 mixes kHz, cycles and
milliseconds — by conversion, never by accident).  ``kyotolint`` enforces
both statically over the AST (:mod:`repro.lint.walker`,
:mod:`repro.lint.rules`) and dynamically via invariant contracts
(:mod:`repro.lint.contracts`).

Run it as ``repro lint [paths] [--format json] [--baseline FILE]``, or
programmatically::

    from repro.lint import lint_paths, exit_code
    findings = lint_paths(["src/repro"])
    assert exit_code(findings) == 0
"""

from .analyzer import analyze_paths
from .baseline import Baseline, BaselineError
from .contracts import (
    ContractViolation,
    InvariantChecker,
    check,
    contracts_enabled,
    invariant,
    set_contracts_enabled,
)
from .facts import FACTS_VERSION, ModuleFacts, Program, extract_facts
from .report import exit_code, failing_findings, format_json, format_text
from .rules import (
    ALL_PROGRAM_RULES,
    ALL_RULES,
    RULES_BY_ID,
    RULES_VERSION,
    Finding,
    ProgramRule,
    Rule,
)
from .walker import (
    clear_cache,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_PROGRAM_RULES",
    "ALL_RULES",
    "Baseline",
    "BaselineError",
    "ContractViolation",
    "FACTS_VERSION",
    "Finding",
    "InvariantChecker",
    "ModuleFacts",
    "Program",
    "ProgramRule",
    "RULES_BY_ID",
    "RULES_VERSION",
    "Rule",
    "analyze_paths",
    "check",
    "clear_cache",
    "contracts_enabled",
    "exit_code",
    "extract_facts",
    "failing_findings",
    "format_json",
    "format_text",
    "invariant",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "set_contracts_enabled",
]
