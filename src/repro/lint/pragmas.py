"""Inline suppression pragmas.

Two forms, both comments:

* same-line: ``x = random.random()  # kyotolint: disable=D001`` silences
  the listed rules (comma-separated, or ``all``) on that line only —
  for a construct spanning several physical lines (a parenthesized
  expression, a call broken across lines) the pragma may sit on *any*
  line of the construct's span;
* file-level: ``# kyotolint: disable-file=U002`` anywhere in the file
  silences the listed rules for the whole file.  Both forms may share a
  line (``# kyotolint: disable=D001  # kyotolint: disable-file=U002``);
  each is parsed independently.

A pragma is a *justified* suppression: unlike a baseline entry it lives in
the code next to the violation, so reviewers see it.  Prefer pragmas with
a trailing justification comment over baseline entries for anything
permanent.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Set

# `disable` must not swallow `disable-file`: the lookahead requires `=`
# immediately after the keyword, and the file form is matched first on
# each line so the two coexist in either order.
_LINE_PRAGMA_RE = re.compile(
    r"#\s*kyotolint:\s*disable=([A-Za-z0-9,\s]+?)\s*(?:#|$)"
)
_FILE_PRAGMA_RE = re.compile(
    r"#\s*kyotolint:\s*disable-file=([A-Za-z0-9,\s]+?)\s*(?:#|$)"
)


def _parse_rule_list(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


class PragmaTable:
    """Suppression state extracted from one file's source text."""

    def __init__(self, source: str) -> None:
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            for match in _LINE_PRAGMA_RE.finditer(text):
                self.line_disables.setdefault(lineno, set()).update(
                    _parse_rule_list(match.group(1))
                )
            for match in _FILE_PRAGMA_RE.finditer(text):
                self.file_disables.update(_parse_rule_list(match.group(1)))

    def is_suppressed(
        self, rule_id: str, line: int, end_line: Optional[int] = None
    ) -> bool:
        """True when ``rule_id`` is pragma-disabled anywhere in the span.

        ``end_line`` extends the check over a multi-line construct so a
        pragma on a continuation line still applies; omitted, only
        ``line`` itself is consulted.
        """
        if rule_id in self.file_disables or "ALL" in self.file_disables:
            return True
        last = max(line, end_line or line)
        for candidate in range(line, last + 1):
            disabled = self.line_disables.get(candidate)
            if disabled and (rule_id in disabled or "ALL" in disabled):
                return True
        return False

    # -- serialization (for the facts cache / phase-2 suppression) --------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": sorted(self.file_disables),
            "lines": {
                str(line): sorted(rules)
                for line, rules in sorted(self.line_disables.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PragmaTable":
        table = cls("")
        table.file_disables = set(data.get("file", []))
        table.line_disables = {
            int(line): set(rules)
            for line, rules in data.get("lines", {}).items()
        }
        return table


def suppressed_findings_removed(
    findings: List[Any], table: PragmaTable
) -> List[Any]:
    """Filter a finding list through one file's pragma table."""
    return [
        finding
        for finding in findings
        if not table.is_suppressed(
            finding.rule_id, finding.line, finding.end_line or finding.line
        )
    ]
