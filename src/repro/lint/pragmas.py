"""Inline suppression pragmas.

Two forms, both comments:

* same-line: ``x = random.random()  # kyotolint: disable=D001`` silences
  the listed rules (comma-separated, or ``all``) on that line only;
* file-level: ``# kyotolint: disable-file=U002`` anywhere in the file
  silences the listed rules for the whole file.

A pragma is a *justified* suppression: unlike a baseline entry it lives in
the code next to the violation, so reviewers see it.  Prefer pragmas with
a trailing justification comment over baseline entries for anything
permanent.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_LINE_PRAGMA_RE = re.compile(
    r"#\s*kyotolint:\s*disable=([A-Za-z0-9,\s]+?)\s*(?:#|$)"
)
_FILE_PRAGMA_RE = re.compile(
    r"#\s*kyotolint:\s*disable-file=([A-Za-z0-9,\s]+?)\s*(?:#|$)"
)


def _parse_rule_list(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


class PragmaTable:
    """Suppression state extracted from one file's source text."""

    def __init__(self, source: str) -> None:
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _LINE_PRAGMA_RE.search(text)
            if match:
                self.line_disables.setdefault(lineno, set()).update(
                    _parse_rule_list(match.group(1))
                )
            match = _FILE_PRAGMA_RE.search(text)
            if match:
                self.file_disables.update(_parse_rule_list(match.group(1)))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is pragma-disabled at ``line``."""
        if rule_id in self.file_disables or "ALL" in self.file_disables:
            return True
        disabled = self.line_disables.get(line)
        if not disabled:
            return False
        return rule_id in disabled or "ALL" in disabled
