"""Baseline (grandfathering) support.

A baseline file freezes the set of known violations at one point in time:
findings matching a baseline entry are demoted to warnings, anything new
fails the run.  This lets the linter land with a gate on day one while
legacy violations are burned down incrementally — the acceptance bar for
this repo is an *empty* baseline, so the file mostly exists for branches
mid-migration.

Entries match on ``(path, rule, line)``; the format is plain JSON so
diffs are reviewable:

.. code-block:: json

    {"version": 1, "entries": [
        {"path": "repro/foo.py", "rule": "D001", "line": 42}
    ]}
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Set, Tuple

from .rules.base import Finding

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


class Baseline:
    """Set of grandfathered findings."""

    def __init__(self, entries: Iterable[Tuple[str, str, int]] = ()) -> None:
        self._entries: Set[Tuple[str, str, int]] = set(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def matches(self, finding: Finding) -> bool:
        return (finding.path, finding.rule_id, finding.line) in self._entries

    def apply(self, findings: Iterable[Finding]) -> List[Finding]:
        """Demote matching findings to baselined warnings; returns input."""
        result = list(findings)
        for finding in result:
            if self.matches(finding):
                finding.baselined = True
                finding.severity = "warning"
        return result

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            (finding.path, finding.rule_id, finding.line)
            for finding in findings
        )

    @classmethod
    def load(cls, path: str) -> "Baseline":
        file_path = pathlib.Path(path)
        if not file_path.exists():
            return cls()
        try:
            payload = json.loads(file_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries = []
        for entry in payload["entries"]:
            try:
                entries.append(
                    (str(entry["path"]), str(entry["rule"]), int(entry["line"]))
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"bad baseline entry {entry!r}: {exc}")
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {"path": p, "rule": rule, "line": line}
                for p, rule, line in sorted(self._entries)
            ],
        }
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
