"""Baseline (grandfathering) support.

A baseline file freezes the set of known violations at one point in time:
findings matching a baseline entry are demoted to warnings, anything new
fails the run.  This lets the linter land with a gate on day one while
legacy violations are burned down incrementally — the acceptance bar for
this repo is an *empty* baseline, so the file mostly exists for branches
mid-migration.

Format version 2 anchors each entry to the *content* of the flagged
source line (``line_hash``: first 12 hex chars of the sha256 of the
stripped line) in addition to its number.  A finding matches when either

* ``(path, rule, line)`` matches exactly (hash ignored if absent), or
* ``(path, rule, line_hash)`` matches an entry whose recorded line is
  within :data:`LINE_WINDOW` lines of the finding — so an unrelated edit
  higher in the file that shifts everything by a few lines does not
  resurrect grandfathered findings.

Version-1 files (no hashes) still load; saving always writes version 2:

.. code-block:: json

    {"version": 2, "entries": [
        {"path": "repro/foo.py", "rule": "D001", "line": 42,
         "line_hash": "9f2b6c0d81aa"}
    ]}
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Tuple

from .rules.base import Finding

_FORMAT_VERSION = 2

#: How far a hash-anchored entry may drift from its recorded line.
LINE_WINDOW = 20


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


class Baseline:
    """Set of grandfathered findings."""

    def __init__(
        self, entries: Iterable[Tuple[str, str, int, str]] = ()
    ) -> None:
        #: (path, rule, line, line_hash) records, hash may be "".
        self._entries: List[Tuple[str, str, int, str]] = sorted(set(entries))
        self._exact = {(p, r, line) for p, r, line, _ in self._entries}
        self._by_hash: Dict[Tuple[str, str, str], List[int]] = {}
        for path, rule, line, line_hash in self._entries:
            if line_hash:
                self._by_hash.setdefault(
                    (path, rule, line_hash), []
                ).append(line)

    def __len__(self) -> int:
        return len(self._entries)

    def matches(self, finding: Finding) -> bool:
        if (finding.path, finding.rule_id, finding.line) in self._exact:
            return True
        if not finding.source_hash:
            return False
        anchored = self._by_hash.get(
            (finding.path, finding.rule_id, finding.source_hash), []
        )
        return any(
            abs(finding.line - line) <= LINE_WINDOW for line in anchored
        )

    def apply(self, findings: Iterable[Finding]) -> List[Finding]:
        """Demote matching findings to baselined warnings; returns input."""
        result = list(findings)
        for finding in result:
            if self.matches(finding):
                finding.baselined = True
                finding.severity = "warning"
        return result

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            (finding.path, finding.rule_id, finding.line, finding.source_hash)
            for finding in findings
        )

    @classmethod
    def load(cls, path: str) -> "Baseline":
        file_path = pathlib.Path(path)
        if not file_path.exists():
            return cls()
        try:
            payload = json.loads(file_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries = []
        for entry in payload["entries"]:
            try:
                entries.append(
                    (
                        str(entry["path"]),
                        str(entry["rule"]),
                        int(entry["line"]),
                        str(entry.get("line_hash", "")),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"bad baseline entry {entry!r}: {exc}")
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {"path": p, "rule": rule, "line": line, "line_hash": line_hash}
                for p, rule, line, line_hash in self._entries
            ],
        }
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
