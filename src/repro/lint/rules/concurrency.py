"""Concurrency-safety rules (C-family) for the campaign fan-out.

``repro run --jobs N`` ships work to ``multiprocessing`` workers, and
the ROADMAP's herd orchestration will multiply the fan-out surface.
Two failure classes are invisible per-file:

* **C001** — an unpicklable callable shipped to a worker: a lambda or a
  function nested inside another function passed as
  ``multiprocessing.Process(target=...)`` or ``pool.imap(func, ...)``.
  These raise ``PicklingError`` at runtime under the spawn start method
  — but only on platforms that spawn, so the bug hides on Linux CI.
* **C002** — module-global mutable state reachable from a worker entry
  point: the entry function (or anything it transitively calls, across
  modules) rebinds a module global (``global x; x = ...``) or mutates a
  module-level container.  Under fork the parent's state leaks into the
  child and mutations silently diverge per process; under spawn the
  global starts fresh.  Either way the result depends on the start
  method — exactly the unpredictability this repo exists to kill.  Warn
  tier: per-process ambient state is sometimes the design (the ambient
  telemetry recorder), but every site deserves a written justification.

Both rules run in phase 2: C002 needs the cross-module call graph, and
C001 needs the target function's definition site, which usually lives in
another module than the fan-out call.
"""

from __future__ import annotations

from typing import List

from ..callgraph import CallGraph, node_id, pretty_chain
from .base import Finding, ProgramRule


class UnpicklableWorkerRule(ProgramRule):
    """C001: lambda / nested function shipped to a worker process."""

    rule_id = "C001"
    description = (
        "lambda or nested function shipped to a multiprocessing worker; "
        "unpicklable under the spawn start method"
    )
    severity = "error"

    def check(self, program) -> List[Finding]:
        findings: List[Finding] = []
        for facts, site in program.iter_sites("worker_sites"):
            if site["func_kind"] == "lambda":
                findings.append(
                    self.finding_at(
                        site,
                        facts.path,
                        f"lambda passed to {site['api']}(); workers pickle "
                        "their payload — use a module-level function",
                    )
                )
                continue
            if site["func_kind"] != "name" or len(site["func_parts"]) != 1:
                continue
            name = site["func_parts"][0]
            for qualname, record in facts.functions.items():
                if record["name"] == name and record["nested"]:
                    findings.append(
                        self.finding_at(
                            site,
                            facts.path,
                            f"nested function {name}() (defined at line "
                            f"{record['line']}) passed to {site['api']}(); "
                            "only module-level functions pickle — hoist it",
                        )
                    )
                    break
        return findings


class WorkerGlobalMutationRule(ProgramRule):
    """C002: worker entry point reaches module-global mutable state."""

    rule_id = "C002"
    description = (
        "worker entry point transitively rebinds or mutates a module "
        "global; results depend on the multiprocessing start method"
    )
    severity = "warning"

    def check(self, program) -> List[Finding]:
        graph = CallGraph(program)
        findings: List[Finding] = []
        for facts, site in program.iter_sites("worker_sites"):
            if site["func_kind"] != "name":
                continue
            entry = graph.resolve_call(facts, site["func_parts"])
            if entry is None and len(site["func_parts"]) == 1:
                entry_name = site["func_parts"][0]
                if entry_name in facts.functions:
                    entry = node_id(facts.module, entry_name)
            if entry is None:
                continue
            parents = graph.reachable(entry)
            reported = set()
            for node in sorted(parents):
                record = graph.function_record(node)
                if record is None:
                    continue
                touched = sorted(
                    set(record.get("global_writes", []))
                    | set(record.get("mutates", []))
                )
                if not touched:
                    continue
                key = (node, tuple(touched))
                if key in reported:
                    continue
                reported.add(key)
                module = node.split(":", 1)[0]
                chain = pretty_chain(graph.chain(parents, node))
                findings.append(
                    self.finding_at(
                        site,
                        facts.path,
                        f"worker fan-out reaches module-global mutation of "
                        f"{', '.join(touched)} in {module} "
                        f"(call chain: {chain}); results depend on the "
                        "start method — pass state explicitly or justify",
                    )
                )
        return findings
