"""Unit-correctness rules (U-family).

Equation 1 (``llc_misses * cpu_freq_khz / unhalted_core_cycles``) is the
paper's load-bearing arithmetic, and the codebase encodes units in
identifier suffixes (``freq_khz``, ``tick_usec``, ``period_ticks``,
``sampling_cost_cycles``).  Multiplication and division *are* how unit
conversions happen, so they are never flagged; adding, subtracting or
comparing two quantities of different units is always a bug.

* **U001** — an additive operation or comparison whose operands carry
  conflicting unit suffixes (``_khz`` + ``_usec``, ``x_ms < y_ticks``)
  without an intervening conversion call.  Operands that are calls (e.g.
  ``usec_to_cycles(...)``) carry no suffix and are not flagged — a
  conversion function is the sanctioned way to cross units.
* **U002** — ``==`` / ``!=`` against a float literal with a fractional
  part.  Such literals are rarely exactly representable in binary and the
  comparison silently fails; compare with a tolerance (or restructure).
  Whole-valued literals (``0.0``, ``1.0``) are exact and commonly used as
  sentinels, so they are allowed.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from .base import FileContext, Rule

#: Recognised unit suffixes.  Each suffix is its own unit: ``_ms`` vs
#: ``_usec`` is just as wrong as ``_ms`` vs ``_ticks``.
_UNIT_SUFFIXES = (
    "hz",
    "khz",
    "mhz",
    "ghz",
    "ms",
    "msec",
    "usec",
    "sec",
    "ticks",
    "cycles",
)

_SUFFIX_RE = re.compile(r"(?:^|_)({})$".format("|".join(_UNIT_SUFFIXES)))


def unit_suffix_of_identifier(name: str) -> Optional[str]:
    """The unit suffix carried by an identifier, if any."""
    match = _SUFFIX_RE.search(name)
    return match.group(1) if match else None


def unit_of_expr(node: ast.AST) -> Optional[str]:
    """Infer the unit of an expression from identifier suffixes.

    Returns None when no unit can be inferred (literals, calls —
    conversion functions are the sanctioned unit boundary) and propagates
    through unary ops and through additive chains whose sides agree.
    """
    if isinstance(node, ast.Name):
        return unit_suffix_of_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix_of_identifier(node.attr)
    if isinstance(node, ast.UnaryOp):
        return unit_of_expr(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = unit_of_expr(node.left)
        right = unit_of_expr(node.right)
        if left is not None and right is not None and left == right:
            return left
    return None


class MixedUnitArithmeticRule(Rule):
    """U001: additive arithmetic / comparison across unit suffixes."""

    rule_id = "U001"
    description = (
        "arithmetic or comparison mixing identifiers with conflicting "
        "unit suffixes without an explicit conversion call"
    )
    node_types = (ast.BinOp, ast.Compare)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            self._check_pair(node, ctx, node.left, node.right)
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            for left, right in zip(operands, operands[1:]):
                self._check_pair(node, ctx, left, right)

    def _check_pair(
        self, node: ast.AST, ctx: FileContext, left: ast.AST, right: ast.AST
    ) -> None:
        unit_left = unit_of_expr(left)
        unit_right = unit_of_expr(right)
        if (
            unit_left is not None
            and unit_right is not None
            and unit_left != unit_right
        ):
            self.report(
                node,
                ctx,
                f"mixing units _{unit_left} and _{unit_right} without a "
                "conversion call (see repro.simulation.clock converters)",
            )


class FloatEqualityRule(Rule):
    """U002: exact equality against a fractional float literal."""

    rule_id = "U002"
    description = (
        "== / != against a fractional float literal; compare with a "
        "tolerance instead"
    )
    node_types = (ast.Compare,)

    def visit(self, node: ast.Compare, ctx: FileContext) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for comparator in [node.left] + list(node.comparators):
            if (
                isinstance(comparator, ast.Constant)
                and isinstance(comparator.value, float)
                and not comparator.value.is_integer()
            ):
                self.report(
                    node,
                    ctx,
                    f"exact comparison against float literal "
                    f"{comparator.value!r} is representation-dependent; "
                    "use math.isclose or an epsilon",
                )
                return
