"""Flow rules: RNG stream provenance (S-family) and unit dataflow (U003).

The determinism guarantee is per-*stream*: two components drawing from
the same ``(seed, name)`` stream produce correlated randomness silently
— every draw one makes perturbs the other, and the correlation is
invisible in any single file.  The S-rules run in phase 2 over the
whole-program fact base:

* **S001** — the same literal stream name constructed in two or more
  modules (``rng.stream("jitter")`` here, ``seeded_stream(seed,
  "jitter")`` there).  Reuse *within* one module is allowed — a module
  re-deriving its own stream is the normal accessor pattern.
* **S002** — a stream construction whose name the analyzer cannot track:
  a dynamic expression (``rng.stream(config.stream)``), an f-string, or
  an omitted name (``seeded_stream(seed)`` — the seed-global stream,
  which every other nameless call site with the same seed aliases).
  Warn tier: dynamic names are sometimes deliberate (validated scenario
  fields), but each site deserves a justification pragma.

**U003** extends the per-expression U001 check through assignment
chains: a suffix-less local that is assigned a unit-carrying expression
*inherits* that unit, so ``delay = end_usec - start_usec`` followed by
``delay + budget_ms`` is flagged even though ``delay`` itself names no
unit, as is ``total_ms = a_ticks + b_ticks`` (the assignment itself
crosses units).  Propagation is straight-line and conservative: a name
reassigned with a different inferred unit becomes unknown, and any
call crossing (a conversion function) resets the unit to unknown.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from .base import FileContext, Finding, ProgramRule, Rule
from .units import unit_of_expr, unit_suffix_of_identifier

#: Files allowed to construct raw/unnamed streams (the registry itself).
_RNG_ALLOWLIST = ("simulation/rng.py",)


class DuplicateStreamNameRule(ProgramRule):
    """S001: one stream name constructed from two or more modules."""

    rule_id = "S001"
    description = (
        "RNG stream name constructed in multiple modules; shared (seed, "
        "name) streams are silently correlated"
    )
    severity = "error"

    def check(self, program) -> List[Finding]:
        sites_by_name: Dict[str, List[Tuple[object, dict]]] = defaultdict(list)
        for facts, site in program.iter_sites("rng_sites"):
            if facts.path.endswith(_RNG_ALLOWLIST):
                continue
            if site.get("name") and not site.get("dynamic"):
                sites_by_name[site["name"]].append((facts, site))
        findings: List[Finding] = []
        for name in sorted(sites_by_name):
            entries = sites_by_name[name]
            modules = sorted({facts.module for facts, _ in entries})
            if len(modules) < 2:
                continue
            for facts, site in entries:
                others = ", ".join(m for m in modules if m != facts.module)
                findings.append(
                    self.finding_at(
                        site,
                        facts.path,
                        f"RNG stream name {name!r} is also constructed in "
                        f"{others}; streams sharing (seed, name) are "
                        "identical — derive a distinct name per component",
                    )
                )
        return findings


class UntrackableStreamNameRule(ProgramRule):
    """S002: stream name the analyzer cannot statically track."""

    rule_id = "S002"
    description = (
        "RNG stream constructed with a dynamic or omitted name; "
        "collisions cannot be checked statically"
    )
    severity = "warning"

    def check(self, program) -> List[Finding]:
        findings: List[Finding] = []
        for facts, site in program.iter_sites("rng_sites"):
            if facts.path.endswith(_RNG_ALLOWLIST):
                continue
            if site.get("name") is not None and not site.get("dynamic"):
                continue
            if site.get("name") is None and not site.get("dynamic"):
                what = (
                    "seeded_stream() without a name derives the seed-global "
                    "stream; every nameless call site with the same seed "
                    "aliases it"
                )
            else:
                what = (
                    "stream name is a dynamic expression; S001 collision "
                    "checking cannot see it"
                )
            findings.append(
                self.finding_at(
                    site,
                    facts.path,
                    f"{what} — pass a distinct literal name (or justify "
                    "with a pragma)",
                )
            )
        return findings


class _UnitEnv:
    """Straight-line unit inference environment for one scope."""

    #: Sentinel for "assigned conflicting units; stop tracking".
    CONFLICT = "<conflict>"

    def __init__(self) -> None:
        self.units: Dict[str, str] = {}

    def lookup(self, name: str) -> Optional[str]:
        unit = self.units.get(name)
        return None if unit == self.CONFLICT else unit

    def assign(self, name: str, unit: Optional[str]) -> None:
        previous = self.units.get(name)
        if previous is None:
            if unit is not None:
                self.units[name] = unit
        elif unit != previous:
            self.units[name] = self.CONFLICT


def _unit_of(node: ast.AST, env: _UnitEnv) -> Tuple[Optional[str], bool]:
    """(unit, inferred_via_env) for an expression under ``env``.

    Mirrors :func:`repro.lint.rules.units.unit_of_expr` but lets a
    suffix-less name fall back to the unit its last assignment carried.
    """
    if isinstance(node, ast.Name):
        own = unit_suffix_of_identifier(node.id)
        if own is not None:
            return own, False
        return env.lookup(node.id), True
    if isinstance(node, ast.Attribute):
        return unit_suffix_of_identifier(node.attr), False
    if isinstance(node, ast.UnaryOp):
        return _unit_of(node.operand, env)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, left_env = _unit_of(node.left, env)
        right, right_env = _unit_of(node.right, env)
        if left is not None and right is not None and left == right:
            return left, left_env or right_env
    return None, False


class UnitFlowRule(Rule):
    """U003: unit suffixes propagated through assignment chains."""

    rule_id = "U003"
    description = (
        "unit mismatch through an assignment chain (a local inherits the "
        "unit of its last assignment)"
    )
    severity = "error"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        env = _UnitEnv()
        for stmt in self._scope_statements(node):
            self._check_statement(stmt, ctx, env)

    def _scope_statements(self, scope: ast.AST) -> Iterable[ast.stmt]:
        """Statements of one scope in source order, without nested defs."""
        pending = list(getattr(scope, "body", []))
        while pending:
            stmt = pending.pop(0)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield stmt
            nested: List[ast.stmt] = []
            for attr in ("body", "orelse", "finalbody"):
                nested.extend(getattr(stmt, attr, []))
            for handler in getattr(stmt, "handlers", []):
                nested.extend(handler.body)
            pending = nested + pending

    def _check_statement(
        self, stmt: ast.stmt, ctx: FileContext, env: _UnitEnv
    ) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._check_assignment(stmt, target.id, stmt.value, ctx, env)
                return
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                self._check_assignment(
                    stmt, stmt.target.id, stmt.value, ctx, env
                )
                return
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub)
        ):
            if isinstance(stmt.target, ast.Name):
                target_unit = unit_suffix_of_identifier(
                    stmt.target.id
                ) or env.lookup(stmt.target.id)
                value_unit, _ = _unit_of(stmt.value, env)
                if (
                    target_unit is not None
                    and value_unit is not None
                    and target_unit != value_unit
                ):
                    self.report(
                        stmt.value,
                        ctx,
                        f"augmented assignment adds _{value_unit} into "
                        f"{stmt.target.id} which carries _{target_unit}",
                    )
                return
        self._check_expressions(stmt, ctx, env)

    def _check_assignment(
        self,
        stmt: ast.stmt,
        name: str,
        value: ast.AST,
        ctx: FileContext,
        env: _UnitEnv,
    ) -> None:
        self._check_expressions(stmt, ctx, env)
        value_unit, _ = _unit_of(value, env)
        own_suffix = unit_suffix_of_identifier(name)
        if (
            own_suffix is not None
            and value_unit is not None
            and value_unit != own_suffix
        ):
            self.report(
                value,
                ctx,
                f"assigning a _{value_unit}-valued expression to "
                f"{name} (suffix _{own_suffix}) crosses units without a "
                "conversion call",
            )
            return
        env.assign(name, own_suffix or value_unit)

    @staticmethod
    def _expression_roots(stmt: ast.stmt) -> List[ast.AST]:
        """The expressions owned by ``stmt`` itself (not by nested stmts)."""
        roots: List[Optional[ast.AST]] = []
        if isinstance(stmt, (ast.Assign, ast.Expr, ast.Return)):
            roots.append(getattr(stmt, "value", None))
        elif isinstance(stmt, ast.AnnAssign):
            roots.append(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            roots.append(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots.append(stmt.iter)
        elif isinstance(stmt, ast.Assert):
            roots.extend([stmt.test, stmt.msg])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots.extend(item.context_expr for item in stmt.items)
        elif isinstance(stmt, ast.Raise):
            roots.append(stmt.exc)
        return [root for root in roots if root is not None]

    def _check_expressions(
        self, stmt: ast.stmt, ctx: FileContext, env: _UnitEnv
    ) -> None:
        """Flag env-dependent additive/comparison conflicts inside ``stmt``.

        Only the statement's own expressions are walked — nested
        statements are visited by the scope iterator — and conflicts
        visible from identifier suffixes alone are U001's and are not
        re-reported here.
        """
        nodes: List[ast.AST] = []
        for root in self._expression_roots(stmt):
            nodes.extend(ast.walk(root))
        for node in nodes:
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node, node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                pairs = [
                    (node, left, right)
                    for left, right in zip(operands, operands[1:])
                ]
            else:
                continue
            for anchor, left, right in pairs:
                left_unit, left_env = _unit_of(left, env)
                right_unit, right_env = _unit_of(right, env)
                if (
                    left_unit is not None
                    and right_unit is not None
                    and left_unit != right_unit
                    and (left_env or right_env)
                ):
                    self.report(
                        anchor,
                        ctx,
                        f"mixing _{left_unit} and _{right_unit} through an "
                        "assignment chain without a conversion call",
                    )


# Re-exported for the rule registry.
__all__ = [
    "DuplicateStreamNameRule",
    "UntrackableStreamNameRule",
    "UnitFlowRule",
    "unit_of_expr",
]
