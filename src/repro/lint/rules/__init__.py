"""kyotolint rule registry — one module per rule family.

Two kinds of rules:

* per-file AST rules (:data:`ALL_RULES`) run in phase 1, one instance
  per linted file, fed nodes by the single-pass walker;
* whole-program rules (:data:`ALL_PROGRAM_RULES`) run in phase 2 over
  the joined fact base (:mod:`repro.lint.facts`) and may relate sites
  across modules.

:data:`RULES_VERSION` keys the on-disk facts/findings cache: bump it
whenever any rule's behaviour changes so stale cached findings are
recomputed.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from .base import FileContext, Finding, ProgramRule, Rule
from .concurrency import UnpicklableWorkerRule, WorkerGlobalMutationRule
from .determinism import (
    BareRandomRule,
    RawRandomConstructionRule,
    SetIterationRule,
    WallClockRule,
)
from .flow import DuplicateStreamNameRule, UnitFlowRule, UntrackableStreamNameRule
from .hygiene import MutableDefaultRule, SwallowedExceptionRule
from .telemetry import SchemaDriftRule, TelemetryNameFlowRule
from .units import FloatEqualityRule, MixedUnitArithmeticRule

#: Bumped whenever rule behaviour changes; part of the cache key.
RULES_VERSION = "2.0"

#: Every per-file AST rule kyotolint knows, in reporting order.
ALL_RULES: List[Type[Rule]] = [
    BareRandomRule,
    RawRandomConstructionRule,
    WallClockRule,
    SetIterationRule,
    MixedUnitArithmeticRule,
    FloatEqualityRule,
    UnitFlowRule,
    MutableDefaultRule,
    SwallowedExceptionRule,
]

#: Every whole-program (phase 2) rule, in reporting order.
ALL_PROGRAM_RULES: List[Type[ProgramRule]] = [
    DuplicateStreamNameRule,
    UntrackableStreamNameRule,
    UnpicklableWorkerRule,
    WorkerGlobalMutationRule,
    TelemetryNameFlowRule,
    SchemaDriftRule,
]

RULES_BY_ID: Dict[str, Union[Type[Rule], Type[ProgramRule]]] = {
    rule.rule_id: rule for rule in [*ALL_RULES, *ALL_PROGRAM_RULES]
}

__all__ = [
    "ALL_PROGRAM_RULES",
    "ALL_RULES",
    "RULES_BY_ID",
    "RULES_VERSION",
    "FileContext",
    "Finding",
    "ProgramRule",
    "Rule",
]
