"""kyotolint rule registry — one module per rule family."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import FileContext, Finding, Rule
from .determinism import (
    BareRandomRule,
    RawRandomConstructionRule,
    SetIterationRule,
    WallClockRule,
)
from .hygiene import MutableDefaultRule, SwallowedExceptionRule
from .units import FloatEqualityRule, MixedUnitArithmeticRule

#: Every rule kyotolint knows, in reporting order.
ALL_RULES: List[Type[Rule]] = [
    BareRandomRule,
    RawRandomConstructionRule,
    WallClockRule,
    SetIterationRule,
    MixedUnitArithmeticRule,
    FloatEqualityRule,
    MutableDefaultRule,
    SwallowedExceptionRule,
]

RULES_BY_ID: Dict[str, Type[Rule]] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "FileContext",
    "Finding",
    "Rule",
]
