"""Rule interface and the finding record shared by every rule family.

A rule is a small, stateless-per-file object: the walker constructs one
instance of each registered rule per linted file, feeds it every AST node
whose type appears in ``node_types``, and collects the findings it emits.
File-scoped context (import aliases, the file's repo-relative path, pragma
table) lives on the :class:`FileContext` the walker passes alongside each
node, so rules never re-walk the tree themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple, Type


@dataclass
class Finding:
    """One rule violation at a source location.

    ``end_line`` is the last physical line of the flagged construct (0
    means "same as line"); pragma suppression honours the whole span so
    a ``# kyotolint: disable=...`` on a continuation line works.
    ``source_hash`` anchors the finding to the *content* of its source
    line so baseline entries survive unrelated edits that shift line
    numbers (see :mod:`repro.lint.baseline`).
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    baselined: bool = False
    end_line: int = 0
    source_hash: str = ""

    def span(self) -> Tuple[int, int]:
        """(first, last) physical line of the flagged construct."""
        return (self.line, max(self.line, self.end_line))

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "baselined": self.baselined,
            "line_hash": self.source_hash,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule_id=data["rule"],
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            message=data["message"],
            severity=data.get("severity", "error"),
            baselined=bool(data.get("baselined", False)),
            source_hash=data.get("line_hash", ""),
        )


def source_line_hash(text: str) -> str:
    """Content anchor of one source line: sha256 of the stripped text."""
    import hashlib

    return hashlib.sha256(text.strip().encode("utf-8")).hexdigest()[:12]


@dataclass
class FileContext:
    """Per-file facts rules need but should not recompute.

    Attributes:
        path: repo-relative posix path of the file being linted.
        random_aliases: names bound to the ``random`` module
            (``import random``, ``import random as r``).
        random_from_imports: names imported *from* ``random``
            (``from random import Random, choice``), mapped to the
            original attribute name.
        time_aliases: names bound to the ``time`` module.
        time_from_imports: names imported from ``time``.
        datetime_aliases: names bound to the ``datetime`` module.
        datetime_from_imports: names imported from ``datetime``.
    """

    path: str
    random_aliases: Set[str] = field(default_factory=set)
    random_from_imports: Dict[str, str] = field(default_factory=dict)
    time_aliases: Set[str] = field(default_factory=set)
    time_from_imports: Dict[str, str] = field(default_factory=dict)
    datetime_aliases: Set[str] = field(default_factory=set)
    datetime_from_imports: Dict[str, str] = field(default_factory=dict)

    def path_endswith(self, *suffixes: str) -> bool:
        """True when the file path matches one of the allowlist suffixes."""
        return any(self.path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class for all kyotolint rules."""

    #: Stable identifier, e.g. ``"D001"``.
    rule_id: str = "X000"
    #: One-line description shown by ``repro lint --rules``.
    description: str = ""
    #: Default severity of fresh (non-baselined) findings.
    severity: str = "error"
    #: AST node classes this rule wants to see.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Inspect one node; call :meth:`report` for each violation."""
        raise NotImplementedError

    def report(
        self, node: ast.AST, ctx: FileContext, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        # Expressions commonly span continuation lines (a BinOp wrapped
        # in parens); statements like an except handler span their whole
        # body, where honouring the span would over-suppress.
        end_line = (
            getattr(node, "end_lineno", None) or line
            if isinstance(node, ast.expr)
            else line
        )
        finding = Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
            end_line=end_line,
        )
        self.findings.append(finding)
        return finding


class ProgramRule:
    """Base class for phase-2 (whole-program) rules.

    Unlike :class:`Rule`, a program rule never sees an AST: it runs after
    every file has been parsed once, over the joined
    :class:`repro.lint.facts.Program` fact base, and may relate call
    sites across modules (RNG stream provenance, worker-reachable state,
    telemetry name flow).  Pragma and baseline handling are applied by
    the analyzer exactly as for per-file findings.
    """

    #: Stable identifier, e.g. ``"S001"``.
    rule_id: str = "P000"
    #: One-line description shown by ``repro lint --rules``.
    description: str = ""
    #: Default severity; ``"error"`` gates, ``"warning"`` reports.
    severity: str = "error"

    def check(self, program: "object") -> List[Finding]:
        """Return every violation visible in ``program``."""
        raise NotImplementedError

    def finding_at(self, site: dict, path: str, message: str) -> Finding:
        """Build a finding anchored at a facts site record."""
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=int(site.get("line", 1)),
            col=int(site.get("col", 0)),
            message=message,
            severity=self.severity,
            end_line=int(site.get("end_line", 0)),
            source_hash=site.get("line_hash", ""),
        )


def call_name(node: ast.AST) -> Sequence[str]:
    """Dotted-name parts of a call target (``a.b.c()`` -> ("a","b","c")).

    Returns an empty tuple for targets that are not plain name/attribute
    chains (subscripts, calls of calls, lambdas...).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()
