"""Rule interface and the finding record shared by every rule family.

A rule is a small, stateless-per-file object: the walker constructs one
instance of each registered rule per linted file, feeds it every AST node
whose type appears in ``node_types``, and collects the findings it emits.
File-scoped context (import aliases, the file's repo-relative path, pragma
table) lives on the :class:`FileContext` the walker passes alongside each
node, so rules never re-walk the tree themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple, Type


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    baselined: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "baselined": self.baselined,
        }


@dataclass
class FileContext:
    """Per-file facts rules need but should not recompute.

    Attributes:
        path: repo-relative posix path of the file being linted.
        random_aliases: names bound to the ``random`` module
            (``import random``, ``import random as r``).
        random_from_imports: names imported *from* ``random``
            (``from random import Random, choice``), mapped to the
            original attribute name.
        time_aliases: names bound to the ``time`` module.
        time_from_imports: names imported from ``time``.
        datetime_aliases: names bound to the ``datetime`` module.
        datetime_from_imports: names imported from ``datetime``.
    """

    path: str
    random_aliases: Set[str] = field(default_factory=set)
    random_from_imports: Dict[str, str] = field(default_factory=dict)
    time_aliases: Set[str] = field(default_factory=set)
    time_from_imports: Dict[str, str] = field(default_factory=dict)
    datetime_aliases: Set[str] = field(default_factory=set)
    datetime_from_imports: Dict[str, str] = field(default_factory=dict)

    def path_endswith(self, *suffixes: str) -> bool:
        """True when the file path matches one of the allowlist suffixes."""
        return any(self.path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class for all kyotolint rules."""

    #: Stable identifier, e.g. ``"D001"``.
    rule_id: str = "X000"
    #: One-line description shown by ``repro lint --rules``.
    description: str = ""
    #: Default severity of fresh (non-baselined) findings.
    severity: str = "error"
    #: AST node classes this rule wants to see.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Inspect one node; call :meth:`report` for each violation."""
        raise NotImplementedError

    def report(
        self, node: ast.AST, ctx: FileContext, message: str
    ) -> Finding:
        finding = Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )
        self.findings.append(finding)
        return finding


def call_name(node: ast.AST) -> Sequence[str]:
    """Dotted-name parts of a call target (``a.b.c()`` -> ("a","b","c")).

    Returns an empty tuple for targets that are not plain name/attribute
    chains (subscripts, calls of calls, lambdas...).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()
