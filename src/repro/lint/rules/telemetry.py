"""Telemetry dataflow rules (T-family).

Telemetry names are stringly-typed: ``recorder.inc("kyoto.samples")`` at
one end, ``recorder.counters["kyoto.samples"]`` (or a campaign summary
key) at the other.  A typo on either side does not crash — the counter
is silently created empty or read as missing — so the linter joins the
write and read sides across the whole program:

* **T001** — a literal telemetry read with no matching write: the name
  was never recorded anywhere (a typo at the read site — the classic
  "incremented under one name, exported under another"), or it was
  recorded under a *different kind* (read as a counter, recorded as a
  gauge).  F-string writes match reads by their literal prefix; if a
  kind has any fully-dynamic write the analyzer cannot rule a read out
  and stays silent for that kind.  Warn tier.
* **T002** — schema-version literal drift: the same schema family
  (``repro.artifact``) appearing with different versions across the
  program (error — one of them is stale), or a schema literal hardcoded
  outside the module that owns its constant (warning — when the owner
  bumps the version, the copy silently drifts).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from .base import Finding, ProgramRule


class TelemetryNameFlowRule(ProgramRule):
    """T001: literal telemetry read that no write site produces."""

    rule_id = "T001"
    description = (
        "telemetry name read but never recorded (or recorded under a "
        "different kind); stringly-typed metric names drift silently"
    )
    severity = "warning"

    def check(self, program) -> List[Finding]:
        literal_writes: Dict[str, Set[str]] = defaultdict(set)
        prefix_writes: Dict[str, Set[str]] = defaultdict(set)
        wildcard_kinds: Set[str] = set()
        for _, site in program.iter_sites("telemetry_writes"):
            kind = site["kind"]
            name = site.get("name")
            if name is None:
                wildcard_kinds.add(kind)
            elif site.get("dynamic"):
                prefix_writes[kind].add(name)
            else:
                literal_writes[kind].add(name)
        findings: List[Finding] = []
        for facts, site in program.iter_sites("telemetry_reads"):
            kind = site["kind"]
            name = site["name"]
            if kind in wildcard_kinds:
                continue
            if name in literal_writes[kind]:
                continue
            if any(name.startswith(p) for p in prefix_writes[kind]):
                continue
            other_kinds = sorted(
                k
                for k in literal_writes
                if name in literal_writes[k]
                or any(name.startswith(p) for p in prefix_writes[k])
            )
            if other_kinds:
                message = (
                    f"telemetry {kind} {name!r} is read here but recorded "
                    f"as a {'/'.join(other_kinds)} — kind mismatch"
                )
            else:
                message = (
                    f"telemetry {kind} {name!r} is read here but never "
                    "recorded anywhere in the program — typo or dead metric"
                )
            findings.append(self.finding_at(site, facts.path, message))
        return findings


class SchemaDriftRule(ProgramRule):
    """T002: schema identifier literals drifting across the program."""

    rule_id = "T002"
    description = (
        "schema-version literal drift: one family with several versions, "
        "or a literal hardcoded outside its owning constant"
    )
    severity = "error"

    def check(self, program) -> List[Finding]:
        by_family: Dict[str, List[Tuple[object, dict]]] = defaultdict(list)
        owners: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        for facts, site in program.iter_sites("schema_sites"):
            by_family[site["family"]].append((facts, site))
            if site["scope"] == "<module>":
                for const, value in facts.str_constants.items():
                    if value == site["literal"] and const.isupper():
                        owners[site["literal"]].append((facts.module, const))
        findings: List[Finding] = []
        for family in sorted(by_family):
            entries = by_family[family]
            versions = sorted({site["version"] for _, site in entries})
            if len(versions) > 1:
                for facts, site in entries:
                    findings.append(
                        self.finding_at(
                            site,
                            facts.path,
                            f"schema family {family!r} appears with versions "
                            f"{versions} across the program; one side is "
                            "stale — bump or import the shared constant",
                        )
                    )
                continue
            for facts, site in entries:
                owning = [
                    (module, const)
                    for module, const in owners.get(site["literal"], [])
                    if module != facts.module
                ]
                if owning and site["scope"] != "<module>":
                    module, const = sorted(owning)[0]
                    finding = self.finding_at(
                        site,
                        facts.path,
                        f"schema literal {site['literal']!r} is hardcoded "
                        f"here but owned by {module}.{const}; import the "
                        "constant so a version bump cannot drift",
                    )
                    finding.severity = "warning"
                    findings.append(finding)
        return findings
