"""Determinism rules (D-family).

The reproduction's headline guarantee is bit-identical replays: every
stochastic stream must derive from ``(seed, name)`` via
:mod:`repro.simulation.rng`, and simulated results must never depend on
wall-clock time or on Python's arbitrary set iteration order.

* **D001** — call of a bare ``random`` module function (``random.random()``,
  ``random.randint(...)``, ``from random import choice``).  These draw from
  the interpreter-global generator, whose state depends on import order and
  on every other caller.
* **D002** — ``random.Random(seed)`` constructed outside
  ``simulation/rng.py``.  Components must accept an injected stream (or use
  :func:`repro.simulation.rng.seeded_stream`) so that one master seed
  reaches every corner of the simulation.
* **D003** — wall-clock reads (``time.time``, ``time.perf_counter``,
  ``time.monotonic``, ``datetime.now`` ...) anywhere except the sanctioned
  ``repro/util.py`` helper.  Simulated code must use simulated time.
* **D004** — iteration directly over a set expression (``for x in set(...)``,
  ``for x in a | b`` over sets, set comprehensions).  Set order varies with
  insertion history and hash seeding of compound keys; iterate
  ``sorted(...)`` instead when order can reach results.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import FileContext, Rule, call_name

#: Files allowed to construct raw ``random.Random`` streams.
RNG_ALLOWLIST = ("simulation/rng.py",)

#: Files allowed to read the wall clock.
WALL_CLOCK_ALLOWLIST = ("repro/util.py",)

#: ``time`` module attributes that read the wall clock.
_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
}

#: ``datetime.datetime`` / ``datetime.date`` constructors that read the clock.
_DATETIME_FUNCS = {"now", "utcnow", "today"}


class BareRandomRule(Rule):
    """D001: module-level ``random.*`` functions share global state."""

    rule_id = "D001"
    description = (
        "bare random.* module function; draw from an injected "
        "random.Random stream instead"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        parts = call_name(node.func)
        if len(parts) == 2 and parts[0] in ctx.random_aliases:
            if parts[1] != "Random":
                self.report(
                    node,
                    ctx,
                    f"call to random.{parts[1]}() uses the global RNG; "
                    "use a named stream from repro.simulation.rng",
                )
        elif len(parts) == 1 and parts[0] in ctx.random_from_imports:
            original = ctx.random_from_imports[parts[0]]
            if original != "Random":
                self.report(
                    node,
                    ctx,
                    f"call to random-module function {original}() uses the "
                    "global RNG; use a named stream from repro.simulation.rng",
                )


class RawRandomConstructionRule(Rule):
    """D002: ``random.Random(...)`` outside the RNG registry module."""

    rule_id = "D002"
    description = (
        "random.Random constructed outside simulation/rng.py; accept an "
        "injected stream or use repro.simulation.rng.seeded_stream"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.path_endswith(*RNG_ALLOWLIST):
            return
        parts = call_name(node.func)
        is_attr = (
            len(parts) == 2
            and parts[0] in ctx.random_aliases
            and parts[1] == "Random"
        )
        is_name = (
            len(parts) == 1
            and ctx.random_from_imports.get(parts[0]) == "Random"
        )
        if is_attr or is_name:
            self.report(
                node,
                ctx,
                "random.Random() constructed outside simulation/rng.py; "
                "inject a stream (RngRegistry.stream / seeded_stream)",
            )


class WallClockRule(Rule):
    """D003: wall-clock reads outside the sanctioned helper."""

    rule_id = "D003"
    description = (
        "wall-clock read outside repro/util.wall_clock(); simulated code "
        "must use simulated time"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.path_endswith(*WALL_CLOCK_ALLOWLIST):
            return
        parts = call_name(node.func)
        culprit = self._wall_clock_call(parts, ctx)
        if culprit:
            self.report(
                node,
                ctx,
                f"wall-clock call {culprit}; route timing through "
                "repro.util.wall_clock() or use simulated time",
            )

    def _wall_clock_call(self, parts, ctx: FileContext) -> Optional[str]:
        if not parts:
            return None
        # time.time(), t.perf_counter() with `import time as t`
        if len(parts) == 2 and parts[0] in ctx.time_aliases:
            if parts[1] in _TIME_FUNCS:
                return f"time.{parts[1]}()"
        # from time import time / perf_counter
        if len(parts) == 1 and parts[0] in ctx.time_from_imports:
            original = ctx.time_from_imports[parts[0]]
            if original in _TIME_FUNCS:
                return f"time.{original}()"
        # datetime.datetime.now(), datetime.date.today()
        if (
            len(parts) == 3
            and parts[0] in ctx.datetime_aliases
            and parts[1] in ("datetime", "date")
            and parts[2] in _DATETIME_FUNCS
        ):
            return f"datetime.{parts[1]}.{parts[2]}()"
        # from datetime import datetime; datetime.now()
        if len(parts) == 2 and parts[0] in ctx.datetime_from_imports:
            original = ctx.datetime_from_imports[parts[0]]
            if original in ("datetime", "date") and parts[1] in _DATETIME_FUNCS:
                return f"datetime.{original}.{parts[1]}()"
        return None


def _is_set_valued(node: ast.AST) -> bool:
    """Conservatively true when ``node`` evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = call_name(node.func)
        return parts in (("set",), ("frozenset",))
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra: either side being a set makes the result a set.
        return _is_set_valued(node.left) or _is_set_valued(node.right)
    return False


class SetIterationRule(Rule):
    """D004: iteration order of a set can leak into results."""

    rule_id = "D004"
    description = (
        "iteration directly over a set expression; wrap in sorted() when "
        "order can reach results"
    )
    node_types = (ast.For, ast.comprehension)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        iter_expr = node.iter  # both ast.For and ast.comprehension have .iter
        if _is_set_valued(iter_expr):
            self.report(
                iter_expr,
                ctx,
                "iterating directly over a set; set order is "
                "insertion/hash dependent — iterate sorted(...) instead",
            )
