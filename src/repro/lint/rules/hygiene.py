"""API-hygiene rules (H-family).

* **H001** — mutable default argument (``def f(x, acc=[])``).  The default
  is evaluated once at definition time and shared across calls; in a
  simulation that aliasing silently couples independent components.
* **H002** — a broad exception handler whose body is only ``pass``
  (``except: pass`` / ``except Exception: pass``).  Swallowing everything
  hides the very invariant violations the contracts layer exists to
  surface.  Narrow handlers (``except KeyError: pass``) are left alone.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, call_name

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {("list",), ("dict",), ("set",), ("bytearray",), ("deque",)}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        return call_name(node.func) in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(Rule):
    """H001: mutable default arguments are shared across calls."""

    rule_id = "H001"
    description = "mutable default argument; use None and construct inside"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(
                    default,
                    ctx,
                    f"mutable default argument in {node.name}(); the value "
                    "is shared across every call — default to None",
                )


class SwallowedExceptionRule(Rule):
    """H002: a broad handler that silently discards the exception."""

    rule_id = "H002"
    description = "broad except handler with a pass-only body swallows errors"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if not all(isinstance(stmt, ast.Pass) for stmt in node.body):
            return
        if node.type is None:
            self.report(
                node, ctx, "bare 'except: pass' swallows every error silently"
            )
            return
        parts = call_name(node.type)
        if len(parts) == 1 and parts[0] in _BROAD_EXCEPTIONS:
            self.report(
                node,
                ctx,
                f"'except {parts[0]}: pass' swallows every error silently; "
                "narrow the exception or handle it",
            )
