"""Parallel campaign runner and JSON artifact aggregation.

A *campaign* is a batch of experiments run as one unit:

* experiments fan out over ``--jobs N`` worker processes
  (:mod:`multiprocessing`); every experiment is internally seeded
  through :mod:`repro.simulation.rng`, so the parallel reports are
  byte-identical to a serial run and results stream out in request
  order regardless of completion order,
* one crashing driver no longer aborts the batch — the failure is
  captured (message + traceback) in the experiment's artifact, the
  remaining experiments still run, and the campaign exits nonzero,
* ``--json DIR`` writes one ``{name}.json`` artifact per experiment
  (schema ``repro.artifact/1``): the report text, the failure if any,
  wall time, and the full ``repro.telemetry/1`` telemetry document,
* :func:`aggregate_dir` folds a directory of artifacts into a single
  campaign summary (schema ``repro.campaign/1``) suitable for
  committing as a ``BENCH_*.json`` perf-trajectory point.

Wall-clock reads route through :func:`repro.util.wall_clock` — the one
sanctioned entry point (kyotolint D003); wall time never feeds back into
simulated results.
"""

from __future__ import annotations

import functools
import hashlib
import json
import multiprocessing
import os
import sys
import traceback
from typing import Any, Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

from repro.scenario import ScenarioError
from repro.telemetry import (
    MetricsRecorder,
    StreamError,
    StreamingSink,
    recording,
    to_json_dict,
)
from repro.util import atomic_write_json, atomic_write_text, elapsed_since, wall_clock

from .registry import REGISTRY, expand_names, is_scenario_token, resolve

#: Schema identifier of one per-experiment artifact file.
ARTIFACT_SCHEMA = "repro.artifact/1"
#: Schema identifier of the aggregated campaign summary.
CAMPAIGN_SCHEMA = "repro.campaign/1"


class CampaignError(ValueError):
    """Raised on invalid campaign inputs (bad names, empty directories)."""


def experiment_stream_dir(stream_root: str, name: str) -> str:
    """Per-experiment stream directory under a campaign ``--stream`` root.

    Reuses the artifact-filename sanitization (minus the ``.json``
    suffix) so a sweep point's stream sits next to its artifact under a
    recognizable, collision-free name.
    """
    stem = artifact_filename(name)[: -len(".json")]
    return os.path.join(stream_root, stem)


def _close_stream(
    sink: Optional[StreamingSink], recorder: MetricsRecorder
) -> Optional[Dict[str, Any]]:
    """Seal an experiment's sink; returns the artifact ``stream`` stanza."""
    if sink is None:
        return None
    sink.close(recorder)
    return {
        "directory": os.path.basename(os.path.normpath(sink.directory)),
        "points_streamed": sink.points_streamed,
        "chunks": sink.chunks_rolled,
    }


def run_one(name: str, stream_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run one experiment (registry name or scenario token); return its artifact.

    Never raises for a failing experiment: the exception is captured in
    the artifact so the rest of the batch keeps running.  An unloadable
    or invalid scenario file is surfaced the same way — as an
    ``ok: False`` artifact named after the token.  This function is the
    unit of work shipped to ``multiprocessing`` workers, so it must stay
    picklable (module-level, plain arguments only).

    With ``stream_dir`` the experiment's recorder gets a
    :class:`~repro.telemetry.stream.StreamingSink` spooling every series
    point at full resolution into ``stream_dir/<sanitized-name>/``; the
    artifact then carries a ``stream`` stanza (directory basename,
    points, chunks).  A sink that cannot be created (typically a reused
    stream directory — streams are never appended to) fails the
    experiment instead of crashing the batch.
    """
    start = wall_clock()
    spec = None
    resolve_error: Optional[Tuple[str, str]] = None
    try:
        spec = resolve(name)
    except (KeyError, ScenarioError) as exc:
        resolve_error = (f"{type(exc).__name__}: {exc}", traceback.format_exc())
    sink: Optional[StreamingSink] = None
    if stream_dir is not None:
        # Streams are keyed by the *resolved* name (when there is one) so
        # a sweep point's stream directory matches its artifact filename.
        stream_key = spec.name if spec is not None else name
        try:
            sink = StreamingSink(experiment_stream_dir(stream_dir, stream_key))
        except StreamError as exc:
            return failure_artifact(
                name,
                f"stream setup failed for {name!r}",
                f"StreamError: {exc}",
                elapsed_since(start),
            )
    recorder = MetricsRecorder(sink=sink)
    if spec is None:
        assert resolve_error is not None
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "name": name,
            "description": f"unresolvable experiment {name!r}",
            "ok": False,
            "report": "",
            "error": resolve_error[0],
            "traceback": resolve_error[1],
            "wall_time_sec": elapsed_since(start),
            "telemetry": to_json_dict(recorder),
        }
        stream_info = _close_stream(sink, recorder)
        if stream_info is not None:
            artifact["stream"] = stream_info
        return artifact
    ok = True
    report = ""
    error: Optional[str] = None
    failure_traceback: Optional[str] = None
    try:
        with recording(recorder):
            report = spec.runner()
    except Exception as exc:  # a crashing driver must not abort the batch
        ok = False
        error = f"{type(exc).__name__}: {exc}"
        failure_traceback = traceback.format_exc()
    stream_info = _close_stream(sink, recorder)
    artifact = {
        "schema": ARTIFACT_SCHEMA,
        "name": spec.name,
        "description": spec.description,
        "ok": ok,
        "report": report,
        "error": error,
        "traceback": failure_traceback,
        "wall_time_sec": elapsed_since(start),
        "telemetry": to_json_dict(recorder),
    }
    if stream_info is not None:
        artifact["stream"] = stream_info
    return artifact


def failure_artifact(
    name: str,
    description: str,
    error: str,
    wall_time_sec: float,
) -> Dict[str, Any]:
    """Synthetic ``ok: False`` artifact for work that produced no report.

    Used for watchdog timeouts, worker crashes and herd quarantines —
    anywhere the experiment never got to build its own artifact.
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "name": name,
        "description": description,
        "ok": False,
        "report": "",
        "error": error,
        "traceback": None,
        "wall_time_sec": wall_time_sec,
        "telemetry": to_json_dict(MetricsRecorder()),
    }


#: Watchdog work payload: a bare experiment name, or ``(name, stream_dir)``.
WorkPayload = Union[str, Tuple[str, Optional[str]]]


def _run_one_into(
    payload: WorkPayload, conn: "multiprocessing.connection.Connection"
) -> None:
    """Watchdog child entry point: run the experiment, ship the artifact.

    Module-level so it stays picklable under every start method.  The
    payload is either a bare name (the historical contract, kept so herd
    journals replay unchanged) or ``(name, stream_dir)`` when the
    campaign streams full-resolution telemetry.
    """
    if isinstance(payload, tuple):
        name, stream_dir = payload
    else:
        name, stream_dir = payload, None
    try:
        conn.send(run_one(name, stream_dir))
    finally:
        conn.close()


def run_one_with_timeout(
    name: str,
    timeout_sec: float,
    grace_sec: float = 5.0,
    stream_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one experiment in a subprocess, killed after ``timeout_sec``.

    A hung driver (infinite loop, deadlock) cannot be interrupted
    in-process, so the watchdog runs it in a child and stops the child
    on timeout — SIGTERM first, escalating to SIGKILL after
    ``grace_sec`` (:func:`repro.herd.pool.stop_child`), so a child that
    ignores SIGTERM cannot hang the campaign.  The timeout — and a
    child that dies without reporting — is surfaced exactly like a
    crashing driver: an ``ok: False`` artifact, and the batch continues.
    """
    if timeout_sec <= 0:
        raise CampaignError(f"timeout_sec must be positive, got {timeout_sec}")
    if grace_sec <= 0:
        raise CampaignError(f"grace_sec must be positive, got {grace_sec}")
    try:
        spec = resolve(name)
    except (KeyError, ScenarioError):
        # Resolution failures need no watchdog; reuse run_one's artifact.
        return run_one(name, stream_dir)
    start = wall_clock()
    payload: WorkPayload = (
        (name, stream_dir) if stream_dir is not None else name
    )
    receiver, sender = multiprocessing.Pipe(duplex=False)
    # C002: the worker installs its own ambient telemetry recorder
    # (recording() rebinds _current per process); nothing flows back except
    # the pickled artifact, so per-process mutation is the design.
    child = multiprocessing.Process(  # kyotolint: disable=C002
        target=_run_one_into, args=(payload, sender)
    )
    child.start()
    sender.close()
    error: Optional[str] = None
    try:
        if receiver.poll(timeout_sec):
            try:
                return receiver.recv()
            except EOFError:
                error = (
                    f"ChildCrash: experiment '{name}' worker died without "
                    "reporting (exit code "
                    f"{child.exitcode if child.exitcode is not None else '?'})"
                )
        else:
            error = (
                f"TimeoutError: watchdog killed '{name}' after "
                f"{timeout_sec:g}s"
            )
    finally:
        # Local import: repro.herd orchestrates *over* the campaign
        # runner, so campaign -> herd must not bind at import time.
        from repro.herd.pool import stop_child

        receiver.close()
        stop_child(child, grace_sec)
    return failure_artifact(
        spec.name, spec.description, error or "", elapsed_since(start)
    )


def _watchdog_artifact(
    name: str, kind: str, result: Optional[Dict[str, Any]],
    timeout_sec: float, wall_time_sec: float, exitcode: Optional[int],
) -> Dict[str, Any]:
    """Artifact for one supervised-pool outcome (see ``_watchdog_stream``)."""
    if kind == "result" and result is not None:
        return result
    try:
        spec = resolve(name)
        display, description = spec.name, spec.description
    except (KeyError, ScenarioError):
        display, description = name, f"unresolvable experiment {name!r}"
    if kind == "timeout":
        error = (
            f"TimeoutError: watchdog killed '{display}' after "
            f"{timeout_sec:g}s"
        )
    else:
        error = (
            f"ChildCrash: experiment '{display}' worker died without "
            f"reporting (exit code "
            f"{exitcode if exitcode is not None else '?'})"
        )
    return failure_artifact(display, description, error, wall_time_sec)


def _watchdog_stream(
    names: Sequence[str],
    jobs: int,
    timeout_sec: float,
    stream_dir: Optional[str] = None,
) -> Iterator[Dict[str, Any]]:
    """Supervised watchdog workers, ``jobs`` at a time, request order out."""
    # Local import: campaign -> herd must not bind at import time (the
    # herd orchestrator builds on this module).
    from repro.herd.pool import SupervisedPool

    buffered: Dict[int, Dict[str, Any]] = {}
    next_index = 0
    launched = 0
    with SupervisedPool(
        target=_run_one_into, jobs=jobs, timeout_sec=timeout_sec
    ) as pool:
        while next_index < len(names):
            while pool.free_slots > 0 and launched < len(names):
                payload: WorkPayload = (
                    (names[launched], stream_dir)
                    if stream_dir is not None
                    else names[launched]
                )
                pool.launch(str(launched), payload)
                launched += 1
            for outcome in pool.wait(0.25):
                index = int(outcome.key)
                buffered[index] = _watchdog_artifact(
                    names[index],
                    outcome.kind,
                    outcome.result,
                    timeout_sec,
                    outcome.wall_time_sec,
                    outcome.exitcode,
                )
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1


def _artifact_stream(
    names: Sequence[str],
    jobs: int,
    timeout_sec: Optional[float] = None,
    stream_dir: Optional[str] = None,
):
    """Yield artifacts for ``names`` in request order.

    Serial (``jobs <= 1`` or a single experiment) runs in-process;
    otherwise a worker pool computes out of order while ``imap``
    delivers in order, so the observable output is identical.  With a
    ``timeout_sec`` watchdog each experiment gets its own supervised
    subprocess — up to ``jobs`` of them concurrently
    (:class:`repro.herd.pool.SupervisedPool`), each owning its full
    time budget, with results still delivered in request order.
    """
    if timeout_sec is not None:
        if jobs <= 1 or len(names) <= 1:
            for name in names:
                yield run_one_with_timeout(
                    name, timeout_sec, stream_dir=stream_dir
                )
        else:
            for artifact in _watchdog_stream(
                names, jobs, timeout_sec, stream_dir
            ):
                yield artifact
        return
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            yield run_one(name, stream_dir)
        return
    worker = (
        functools.partial(run_one, stream_dir=stream_dir)
        if stream_dir is not None
        else run_one
    )
    with multiprocessing.Pool(processes=min(jobs, len(names))) as pool:
        # C002: run_one reaches recording()'s per-process ambient recorder
        # rebinding by design; results return only via pickled artifacts.
        for artifact in pool.imap(worker, list(names)):  # kyotolint: disable=C002
            yield artifact


def artifact_filename(name: str) -> str:
    """Filesystem-safe artifact filename for an experiment name.

    Scenario names may carry sweep labels (``chaos@faults.uniform_rate=0.5``)
    or, for unresolvable tokens, whole paths; everything outside a
    conservative safe set maps to ``_`` so the file lands inside
    ``json_dir`` on every platform.  Sanitization is lossy (``a/b`` and
    ``a_b`` both sanitize to ``a_b``), so whenever it changed the name a
    short hash of the *original* name is appended — distinct experiment
    names can never silently share (and overwrite) one artifact file.
    """
    safe = "".join(
        ch if ch.isalnum() or ch in "._@=,+-" else "_" for ch in name
    )
    if not safe:
        safe = "experiment"
    if safe != name:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe}-{digest}"
    return f"{safe}.json"


def write_artifact(json_dir: str, artifact: Dict[str, Any]) -> str:
    """Write one per-experiment artifact atomically; returns the path.

    The document lands in a temp file in the same directory and is
    ``os.replace``d into place (:func:`repro.util.atomic_write_json`),
    so a kill mid-write can never leave a truncated ``.json`` behind —
    readers see the old content or the new content, never half a
    document.
    """
    path = os.path.join(json_dir, artifact_filename(artifact["name"]))
    return atomic_write_json(path, artifact)


def run_campaign(
    names: Sequence[str],
    jobs: int = 1,
    json_dir: Optional[str] = None,
    out: IO[str] = sys.stdout,
    timeout_sec: Optional[float] = None,
    stream_dir: Optional[str] = None,
) -> int:
    """Run a campaign; returns the process exit code (0 ok, 1 failures).

    ``names`` must already be registry names or scenario-file tokens
    (use :func:`repro.experiments.registry.expand_names` for user
    input — it also expands sweep files into point tokens).
    Reports stream to ``out`` in the legacy serial format; artifacts go
    to ``json_dir`` when given.  ``timeout_sec`` arms the per-experiment
    watchdog (see :func:`run_one_with_timeout`).  ``stream_dir`` spools
    each experiment's full-resolution telemetry into its own
    subdirectory (see :func:`experiment_stream_dir`).
    """
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if timeout_sec is not None and timeout_sec <= 0:
        raise CampaignError(f"timeout_sec must be positive, got {timeout_sec}")
    unknown = [
        name
        for name in names
        if name not in REGISTRY and not is_scenario_token(name)
    ]
    if unknown:
        raise CampaignError(f"unknown experiment(s): {', '.join(unknown)}")
    if stream_dir is not None:
        os.makedirs(stream_dir, exist_ok=True)
    failed: List[str] = []
    for artifact in _artifact_stream(names, jobs, timeout_sec, stream_dir):
        out.write(f"== {artifact['name']}: {artifact['description']} ==\n")
        if artifact["ok"]:
            out.write(artifact["report"])
        else:
            failed.append(artifact["name"])
            out.write(f"!! {artifact['name']} failed: {artifact['error']}\n")
            if artifact["traceback"]:
                out.write(artifact["traceback"])
        out.write(f"\n[{artifact['wall_time_sec']:.1f}s]\n\n")
        if json_dir is not None:
            write_artifact(json_dir, artifact)
    if failed:
        out.write(f"FAILED: {', '.join(failed)}\n")
        return 1
    return 0


# -- aggregation -------------------------------------------------------------


def scan_artifacts(
    json_dir: str,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Load ``repro.artifact/1`` documents; report corrupt files.

    Returns ``(artifacts, corrupt)`` where ``corrupt`` lists the
    filenames (sorted) that held undecodable JSON.  A corrupt artifact —
    e.g. one truncated by a kill mid-write before writes became atomic —
    must not abort aggregation of the healthy rest of the directory.
    Non-artifact JSON files (e.g. a previously written campaign summary
    in the same directory) are skipped, not errors.
    """
    if not os.path.isdir(json_dir):
        raise CampaignError(f"no such artifact directory: {json_dir}")
    artifacts: List[Dict[str, Any]] = []
    corrupt: List[str] = []
    for entry in sorted(os.listdir(json_dir)):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(json_dir, entry)
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError:
                corrupt.append(entry)
                continue
        if isinstance(data, dict) and data.get("schema") == ARTIFACT_SCHEMA:
            artifacts.append(data)
    return artifacts, corrupt


def load_artifacts(json_dir: str) -> List[Dict[str, Any]]:
    """Load every readable ``repro.artifact/1`` document in ``json_dir``.

    Corrupt files are tolerated (see :func:`scan_artifacts`); a
    directory with no readable artifact at all is still an error.
    """
    artifacts, _corrupt = scan_artifacts(json_dir)
    if not artifacts:
        raise CampaignError(
            f"no {ARTIFACT_SCHEMA} artifacts found in {json_dir}"
        )
    return artifacts


def aggregate_artifacts(artifacts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-experiment artifacts into one campaign summary dict."""
    experiments = []
    for artifact in artifacts:
        report = artifact.get("report", "") or ""
        telemetry = artifact.get("telemetry", {}) or {}
        experiments.append(
            {
                "name": artifact["name"],
                "ok": bool(artifact["ok"]),
                "wall_time_sec": round(float(artifact["wall_time_sec"]), 3),
                "report_sha256": hashlib.sha256(
                    report.encode("utf-8")
                ).hexdigest(),
                "error": artifact.get("error"),
                "telemetry_counters": telemetry.get("counters", {}),
            }
        )
    failed = [entry["name"] for entry in experiments if not entry["ok"]]
    return {
        "schema": CAMPAIGN_SCHEMA,
        "num_experiments": len(experiments),
        "num_failed": len(failed),
        "failed": failed,
        "total_wall_time_sec": round(
            sum(entry["wall_time_sec"] for entry in experiments), 3
        ),
        "experiments": experiments,
    }


def aggregate_dir(json_dir: str) -> Dict[str, Any]:
    """Aggregate every artifact in ``json_dir`` into a campaign summary.

    Corrupt artifact files do not abort aggregation — they are listed
    under ``corrupt_artifacts`` in the summary so the campaign still
    reports (and exits nonzero on) the damage.
    """
    artifacts, corrupt = scan_artifacts(json_dir)
    if not artifacts:
        raise CampaignError(
            f"no {ARTIFACT_SCHEMA} artifacts found in {json_dir}"
        )
    summary = aggregate_artifacts(artifacts)
    if corrupt:
        summary["corrupt_artifacts"] = corrupt
    return summary


def summarize_campaign(
    json_dir: str,
    output: Optional[str] = None,
    out: IO[str] = sys.stdout,
) -> int:
    """The ``repro campaign`` subcommand: aggregate and emit JSON."""
    try:
        summary = aggregate_dir(json_dir)
    except CampaignError as exc:
        sys.stderr.write(f"repro campaign: error: {exc}\n")
        return 2
    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    if output is not None:
        # Atomic like every artifact write: a kill mid-summary must not
        # leave a truncated JSON document for downstream tooling.
        atomic_write_text(output, text)
        out.write(f"campaign summary written to {output}\n")
    else:
        out.write(text)
    if summary.get("corrupt_artifacts"):
        names = ", ".join(summary["corrupt_artifacts"])
        sys.stderr.write(f"repro campaign: corrupt artifact(s): {names}\n")
        return 1
    return 0 if summary["num_failed"] == 0 else 1
