"""Fig 11 — Socket dedication can be avoided when computing llc_cap_act.

Recomputes the Fig 4 equation-1 indicator for all ten applications in two
ways: with socket dedication (the intrinsic, solo measurement) and
without it (sampled while colocated with a mixed set of co-runners), and
compares the two resulting aggressiveness orderings.

Expected shape (paper): the two bars track each other closely for most
applications, so the dedication (and its Fig 9 migration cost) can often
be avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.kendall import kendall_tau, ranking_from_scores
from repro.analysis.reporting import format_table
from repro.core.equation import llc_cap_act
from repro.scenario import ScenarioSpec, VmSpec, WorkloadSpec, materialize
from repro.workloads.profiles import FIG4_APPLICATIONS


@dataclass
class Fig11Result:
    #: app -> equation-1 value measured solo (socket dedicated).
    dedicated: Dict[str, float] = field(default_factory=dict)
    #: app -> equation-1 value measured colocated (no dedication).
    shared: Dict[str, float] = field(default_factory=dict)

    @property
    def order_dedicated(self) -> List[str]:
        return ranking_from_scores(self.dedicated)

    @property
    def order_shared(self) -> List[str]:
        return ranking_from_scores(self.shared)

    @property
    def tau(self) -> float:
        return kendall_tau(self.order_dedicated, self.order_shared)


def _equation1_of(system, vm, warmup: int, measure: int) -> float:
    system.run_ticks(warmup)
    vm.reset_metrics()
    system.run_ticks(measure)
    vcpu = vm.vcpus[0]
    return llc_cap_act(vcpu.llc_misses, vcpu.cycles_run, system.freq_khz)


def run(
    apps: Sequence[str] = tuple(FIG4_APPLICATIONS),
    corunner: str = "gcc",
    warmup_ticks: int = 30,
    measure_ticks: int = 90,
) -> Fig11Result:
    result = Fig11Result()
    for app in apps:
        target = VmSpec(
            name=app, workload=WorkloadSpec(app=app), pinned_cores=(0,)
        )
        # With dedication: the app is alone on the socket.
        built = materialize(
            ScenarioSpec(name=f"fig11-{app}-dedicated", vms=(target,))
        )
        result.dedicated[app] = _equation1_of(
            built.system, built.vm(app), warmup_ticks, measure_ticks
        )
        # Without dedication: measured while a co-runner shares the LLC.
        built = materialize(
            ScenarioSpec(
                name=f"fig11-{app}-shared",
                vms=(
                    target,
                    VmSpec(
                        name="corunner",
                        workload=WorkloadSpec(app=corunner),
                        pinned_cores=(1,),
                    ),
                ),
            )
        )
        result.shared[app] = _equation1_of(
            built.system, built.vm(app), warmup_ticks, measure_ticks
        )
    return result


def format_report(result: Fig11Result) -> str:
    rows = [
        [app, result.dedicated[app], result.shared[app]]
        for app in result.order_dedicated
    ]
    table = format_table(
        ["app", "eq1 with dedication", "eq1 without dedication"],
        rows,
        title="Fig 11: equation 1 with vs without socket dedication",
    )
    return table + (
        f"\nordering agreement (Kendall tau) = {result.tau:.3f}"
    )
