"""Fig 5 — KS4Xen minimises LLC contention, avoiding performance variation.

Runs vsen1 (gcc, booked llc_cap 250k) in parallel with each disruptor
vdis1..3 (lbm, blockie, mcf — each also booked 250k) under KS4Xen and
records:

* vsen1's performance normalised to its solo run (paper: "almost kept
  whatever the aggressiveness of the concurrent VM"),
* the punishment counts of vsen1 and of the disruptor (paper: disruptors
  receive far more penalties),
* for vdis1, the per-tick timeline of its pollution quota and of its CPU
  usage under XCS vs KS4Xen (paper's bottom plots: under KS4Xen the VM is
  deprived of the processor whenever its measured llc_cap exceeds the
  booked one — a zigzag quota).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import normalized_performance
from repro.analysis.reporting import format_table
from repro.scenario import (
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    materialize,
)
from repro.workloads.profiles import DISRUPTIVE_APPS, application_workload

from .common import PAPER_LLC_CAP, measured_ipc, solo_ipc_of


@dataclass
class Fig05Timeline:
    """Per-tick traces of the vdis1 run (bottom plots of Fig 5)."""

    quota: List[float] = field(default_factory=list)
    running_ks4xen: List[bool] = field(default_factory=list)
    running_xcs: List[bool] = field(default_factory=list)


@dataclass
class Fig05Result:
    #: disruptor name -> vsen1 normalised performance under KS4Xen.
    normalized_perf: Dict[str, float] = field(default_factory=dict)
    #: disruptor name -> vsen1 normalised performance under plain XCS.
    normalized_perf_xcs: Dict[str, float] = field(default_factory=dict)
    #: disruptor name -> (vsen1 punishments, disruptor punishments).
    punishments: Dict[str, tuple] = field(default_factory=dict)
    timeline: Fig05Timeline = field(default_factory=Fig05Timeline)


def _pair_spec(
    disruptor_app: str, scheduler_kind: str, llc_cap: float
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"fig05-{scheduler_kind}-{disruptor_app}",
        scheduler=SchedulerChoice(kind=scheduler_kind),
        vms=(
            VmSpec(
                name="vsen1",
                workload=WorkloadSpec(app="gcc"),
                llc_cap=llc_cap,
                pinned_cores=(0,),
            ),
            VmSpec(
                name="vdis",
                workload=WorkloadSpec(app=disruptor_app),
                llc_cap=llc_cap,
                pinned_cores=(1,),
            ),
        ),
    )


def _run_pair(
    disruptor_app: str,
    scheduler_kind: str,
    llc_cap: float,
    warmup: int,
    measure: int,
    record_timeline: Optional[Fig05Timeline] = None,
    timeline_field: str = "",
):
    built = materialize(_pair_spec(disruptor_app, scheduler_kind, llc_cap))
    system = built.system
    sen, dis = built.vm("vsen1"), built.vm("vdis")
    kyoto = built.kyoto
    if record_timeline is not None:
        dis_vcpu = dis.vcpus[0]

        def observer(sys_, tick_index) -> None:
            getattr(record_timeline, timeline_field).append(
                dis_vcpu.gid in sys_.last_tick_cycles
            )
            if timeline_field == "running_ks4xen":
                quota = kyoto.quota(dis)
                record_timeline.quota.append(quota if quota is not None else 0.0)

        system.add_tick_observer(observer)
    ipc = measured_ipc(system, sen, warmup, measure)
    if kyoto is not None:
        return ipc, kyoto.punishments(sen), kyoto.punishments(dis)
    return ipc, 0, 0


def run(
    llc_cap: float = PAPER_LLC_CAP,
    warmup_ticks: int = 30,
    measure_ticks: int = 200,
) -> Fig05Result:
    result = Fig05Result()
    solo = solo_ipc_of(
        application_workload("gcc"),
        warmup_ticks=warmup_ticks,
        measure_ticks=measure_ticks,
    )
    for vdis_name, app in DISRUPTIVE_APPS.items():
        timeline = result.timeline if vdis_name == "vdis1" else None
        ipc_k, pun_sen, pun_dis = _run_pair(
            app, "ks4xen", llc_cap, warmup_ticks, measure_ticks,
            record_timeline=timeline, timeline_field="running_ks4xen",
        )
        ipc_x, __, __ = _run_pair(
            app, "xcs", llc_cap, warmup_ticks, measure_ticks,
            record_timeline=timeline, timeline_field="running_xcs",
        )
        result.normalized_perf[vdis_name] = normalized_performance(solo, ipc_k)
        result.normalized_perf_xcs[vdis_name] = normalized_performance(solo, ipc_x)
        result.punishments[vdis_name] = (pun_sen, pun_dis)
    return result


def format_report(result: Fig05Result) -> str:
    rows = []
    for vdis in sorted(result.normalized_perf):
        pun_sen, pun_dis = result.punishments[vdis]
        rows.append(
            [
                vdis,
                result.normalized_perf[vdis],
                result.normalized_perf_xcs[vdis],
                pun_sen,
                pun_dis,
            ]
        )
    table = format_table(
        ["disruptor", "vsen1 norm perf (KS4Xen)", "vsen1 norm perf (XCS)",
         "#punish vsen1", "#punish vdis"],
        rows,
        title="Fig 5: KS4Xen effectiveness (booked llc_cap = 250k)",
    )
    ks_duty = (
        sum(result.timeline.running_ks4xen) / len(result.timeline.running_ks4xen)
        if result.timeline.running_ks4xen
        else 0.0
    )
    xcs_duty = (
        sum(result.timeline.running_xcs) / len(result.timeline.running_xcs)
        if result.timeline.running_xcs
        else 0.0
    )
    footer = (
        f"\nvdis1 CPU duty cycle: XCS={xcs_duty:.2f}, KS4Xen={ks_duty:.2f} "
        f"(KS4Xen deprives the polluter of the processor)"
    )
    return table + footer
