"""Fig 3 — The processor is a good lever for punishing disruptive VMs.

Runs each sensitive VM (vsen1..3 = gcc, omnetpp, soplex) in parallel with
vdis1 (lbm) while sweeping the disruptor's computing capacity (its XCS
cap) from 0 to 100 percent of a core.

Expected shape (paper): each sensitive VM's degradation increases
(roughly linearly) with the disruptor's computing power, peaking around
15-23%.  This is the observation that justifies using the CPU as the
enforcement lever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.metrics import degradation_percent
from repro.analysis.reporting import format_table
from repro.scenario import ScenarioSpec, VmSpec, WorkloadSpec, materialize
from repro.workloads.profiles import SENSITIVE_APPS, application_workload

from .common import measured_ipc, solo_ipc_of

DEFAULT_CAPS = (0, 20, 40, 60, 80, 100)


@dataclass
class Fig03Result:
    """Degradation of each vsen vs the disruptor's cap."""

    caps: List[int]
    #: vm name ("vsen1"..) -> degradation % per cap point.
    degradation: Dict[str, List[float]] = field(default_factory=dict)


def run(
    caps: Sequence[int] = DEFAULT_CAPS,
    disruptor_app: str = "lbm",
    warmup_ticks: int = 30,
    measure_ticks: int = 120,
) -> Fig03Result:
    result = Fig03Result(caps=list(caps))
    for vsen, app in SENSITIVE_APPS.items():
        solo = solo_ipc_of(
            application_workload(app), warmup_ticks=warmup_ticks,
            measure_ticks=measure_ticks,
        )
        series: List[float] = []
        for cap in caps:
            vms = [
                VmSpec(name=vsen, workload=WorkloadSpec(app=app), pinned_cores=(0,))
            ]
            if cap > 0:
                vms.append(
                    VmSpec(
                        name="vdis1",
                        workload=WorkloadSpec(app=disruptor_app),
                        cap_percent=float(cap),
                        pinned_cores=(1,),
                    )
                )
            built = materialize(
                ScenarioSpec(name=f"fig03-{vsen}-cap{cap}", vms=tuple(vms))
            )
            ipc = measured_ipc(
                built.system, built.vm(vsen), warmup_ticks, measure_ticks
            )
            series.append(degradation_percent(solo, ipc))
        result.degradation[vsen] = series
    return result


def is_monotone_increasing(series: Sequence[float], tolerance: float = 1.0) -> bool:
    """True if the series rises with the cap (small dips tolerated)."""
    return all(
        later >= earlier - tolerance
        for earlier, later in zip(series, series[1:])
    )


def linearity_r_squared(result: Fig03Result, vsen: str) -> float:
    """R² of the degradation-vs-cap series (the paper claims linearity)."""
    from repro.analysis.statistics import linear_fit

    return linear_fit(
        [float(c) for c in result.caps], result.degradation[vsen]
    ).r_squared


def format_report(result: Fig03Result) -> str:
    rows = []
    for i, cap in enumerate(result.caps):
        rows.append([cap] + [result.degradation[v][i] for v in sorted(result.degradation)])
    table = format_table(
        ["vdis1 cap %"] + sorted(result.degradation),
        rows,
        title="Fig 3: sensitive-VM degradation vs disruptor computing power",
    )
    fits = ", ".join(
        f"{vsen} R2={linearity_r_squared(result, vsen):.3f}"
        for vsen in sorted(result.degradation)
    )
    return table + f"\nlinearity: {fits}"
