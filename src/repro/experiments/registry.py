"""Registry of runnable experiments.

``repro.cli`` used to hold a private table of lambdas; the campaign
runner needs *picklable* runner functions (``multiprocessing`` ships the
work to workers by qualified name), and other tools want to enumerate
experiments without importing the CLI.  Each runner is a module-level
zero-argument function returning the experiment's printable report; all
stochastic inputs derive from fixed seeds through
:mod:`repro.simulation.rng`, so a runner's report is byte-identical no
matter which process (or how many processes) executes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from . import (
    chaos, fig01, fig02, fig03, fig04, fig05, fig06,
    fig07, fig08, fig09, fig10, fig11, fig12, tables,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: name, description, report producer."""

    name: str
    description: str
    runner: Callable[[], str]


def table1_report() -> str:
    return tables.format_table1(tables.run_table1())


def table2_report() -> str:
    return tables.format_table2(tables.run_table2())


def fig01_report() -> str:
    return fig01.format_report(fig01.run())


def fig02_report() -> str:
    return fig02.format_report(fig02.run())


def fig03_report() -> str:
    return fig03.format_report(fig03.run())


def fig04_report() -> str:
    return fig04.format_report(fig04.run())


def fig05_report() -> str:
    return fig05.format_report(fig05.run())


def fig06_report() -> str:
    return fig06.format_report(fig06.run())


def fig07_report() -> str:
    return fig07.format_report(fig07.run())


def fig08_report() -> str:
    return fig08.format_report(fig08.run())


def fig09_report() -> str:
    return fig09.format_report(fig09.run())


def fig10_report() -> str:
    return fig10.format_report(fig10.run())


def fig11_report() -> str:
    return fig11.format_report(fig11.run())


def fig12_report() -> str:
    return fig12.format_report(fig12.run())


def chaos_report() -> str:
    return chaos.format_report(chaos.run())


#: Canonical experiment order — the order ``run all`` executes.
_SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec("table1", "experimental machine", table1_report),
    ExperimentSpec("table2", "experimental VMs", table2_report),
    ExperimentSpec("fig01", "LLC contention impact matrix", fig01_report),
    ExperimentSpec("fig02", "LLC misses per tick (v2_rep)", fig02_report),
    ExperimentSpec("fig03", "the processor is a good lever", fig03_report),
    ExperimentSpec("fig04", "equation 1 vs LLCM indicators", fig04_report),
    ExperimentSpec("fig05", "KS4Xen effectiveness", fig05_report),
    ExperimentSpec("fig06", "KS4Xen scalability", fig06_report),
    ExperimentSpec("fig07", "Pisces architecture audit", fig07_report),
    ExperimentSpec("fig08", "Kyoto vs Pisces", fig08_report),
    ExperimentSpec("fig09", "vCPU migration overhead", fig09_report),
    ExperimentSpec("fig10", "when isolation can be skipped", fig10_report),
    ExperimentSpec("fig11", "dedication vs no dedication", fig11_report),
    ExperimentSpec("fig12", "KS4Xen overhead", fig12_report),
)

#: Runnable by name but *not* part of ``run all``: the chaos sweep
#: exercises the fault-injection path (repro.faults), and keeping it out
#: of ``all`` keeps the paper-reproduction artifact set byte-stable.
_EXTRA_SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "chaos", "resilient monitoring under fault injection", chaos_report
    ),
)

#: name -> spec, in canonical order (dicts preserve insertion order).
REGISTRY: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in _SPECS + _EXTRA_SPECS
}


def experiment_names() -> List[str]:
    """Experiment names ``all`` expands to, in canonical order."""
    return [spec.name for spec in _SPECS]


def expand_names(names: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Resolve a user-supplied experiment list.

    ``"all"`` expands to the canonical registry order; duplicates are
    dropped keeping the first occurrence, so the result is deterministic
    for any input.  Returns ``(known, unknown)`` — ``known`` preserves
    request order and is ready to run, ``unknown`` preserves the order
    the unrecognised names first appeared.
    """
    requested: List[str] = []
    for name in names:
        if name == "all":
            requested.extend(experiment_names())
        else:
            requested.append(name)
    seen = set()
    known: List[str] = []
    unknown: List[str] = []
    for name in requested:
        if name in seen:
            continue
        seen.add(name)
        if name in REGISTRY:
            known.append(name)
        else:
            unknown.append(name)
    return known, unknown
