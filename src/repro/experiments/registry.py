"""Registry of runnable experiments (built-in and file-backed).

``repro.cli`` used to hold a private table of lambdas; the campaign
runner needs *picklable* runner functions (``multiprocessing`` ships the
work to workers by qualified name), and other tools want to enumerate
experiments without importing the CLI.  Each runner is a module-level
zero-argument function returning the experiment's printable report; all
stochastic inputs derive from fixed seeds through
:mod:`repro.simulation.rng`, so a runner's report is byte-identical no
matter which process (or how many processes) executes it.

Beyond the built-in names, any ``*.toml`` / ``*.json`` scenario file
(:mod:`repro.scenario`) is a runnable experiment: ``repro run
path/to/scenario.toml`` behaves exactly like a registered name.  A file
with a ``[sweep]`` table expands (via :func:`expand_names`) into one
*point token* per grid point — ``path.toml#3`` is the fourth point —
and each point runs as its own experiment with its own artifact.
Tokens stay plain strings precisely so the multiprocessing fan-out can
pickle them.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    expand_document,
    parse_scenario_file,
    run_spec,
)

from . import (
    chaos, fig01, fig02, fig03, fig04, fig05, fig06,
    fig07, fig08, fig09, fig10, fig11, fig12, tables,
)

#: File suffixes that mark a name as a scenario-file token.
SCENARIO_SUFFIXES = (".toml", ".json")


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: name, description, report producer."""

    name: str
    description: str
    runner: Callable[[], str]


def table1_report() -> str:
    return tables.format_table1(tables.run_table1())


def table2_report() -> str:
    return tables.format_table2(tables.run_table2())


def fig01_report() -> str:
    return fig01.format_report(fig01.run())


def fig02_report() -> str:
    return fig02.format_report(fig02.run())


def fig03_report() -> str:
    return fig03.format_report(fig03.run())


def fig04_report() -> str:
    return fig04.format_report(fig04.run())


def fig05_report() -> str:
    return fig05.format_report(fig05.run())


def fig06_report() -> str:
    return fig06.format_report(fig06.run())


def fig07_report() -> str:
    return fig07.format_report(fig07.run())


def fig08_report() -> str:
    return fig08.format_report(fig08.run())


def fig09_report() -> str:
    return fig09.format_report(fig09.run())


def fig10_report() -> str:
    return fig10.format_report(fig10.run())


def fig11_report() -> str:
    return fig11.format_report(fig11.run())


def fig12_report() -> str:
    return fig12.format_report(fig12.run())


def chaos_report() -> str:
    return chaos.format_report(chaos.run())


#: Canonical experiment order — the order ``run all`` executes.
_SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec("table1", "experimental machine", table1_report),
    ExperimentSpec("table2", "experimental VMs", table2_report),
    ExperimentSpec("fig01", "LLC contention impact matrix", fig01_report),
    ExperimentSpec("fig02", "LLC misses per tick (v2_rep)", fig02_report),
    ExperimentSpec("fig03", "the processor is a good lever", fig03_report),
    ExperimentSpec("fig04", "equation 1 vs LLCM indicators", fig04_report),
    ExperimentSpec("fig05", "KS4Xen effectiveness", fig05_report),
    ExperimentSpec("fig06", "KS4Xen scalability", fig06_report),
    ExperimentSpec("fig07", "Pisces architecture audit", fig07_report),
    ExperimentSpec("fig08", "Kyoto vs Pisces", fig08_report),
    ExperimentSpec("fig09", "vCPU migration overhead", fig09_report),
    ExperimentSpec("fig10", "when isolation can be skipped", fig10_report),
    ExperimentSpec("fig11", "dedication vs no dedication", fig11_report),
    ExperimentSpec("fig12", "KS4Xen overhead", fig12_report),
)

#: Runnable by name but *not* part of ``run all``: the chaos sweep
#: exercises the fault-injection path (repro.faults), and keeping it out
#: of ``all`` keeps the paper-reproduction artifact set byte-stable.
_EXTRA_SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "chaos", "resilient monitoring under fault injection", chaos_report
    ),
)

#: name -> spec, in canonical order (dicts preserve insertion order).
REGISTRY: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in _SPECS + _EXTRA_SPECS
}


def experiment_names() -> List[str]:
    """Experiment names ``all`` expands to, in canonical order."""
    return [spec.name for spec in _SPECS]


def is_scenario_token(name: str) -> bool:
    """True when ``name`` names a scenario file or one of its points."""
    path, _, _index = name.partition("#")
    return path.endswith(SCENARIO_SUFFIXES) and name.count("#") <= 1


def scenario_points(path: str) -> List[Tuple[str, ScenarioSpec]]:
    """Parse + expand a scenario file into ``(token, spec)`` pairs.

    A sweep-free file yields a single pair whose token is ``path``
    itself; a ``[sweep]`` file yields ``path#0 .. path#N-1`` in grid
    order.  Raises :class:`ScenarioError` on unreadable, malformed or
    invalid files — every point of a sweep is validated up front, so a
    campaign never discovers a bad grid point halfway through.
    """
    points = expand_document(parse_scenario_file(path))
    if len(points) == 1 and points[0][0] is None:
        return [(path, points[0][1])]
    return [(f"{path}#{i}", spec) for i, (_, spec) in enumerate(points)]


def scenario_spec_of(token: str) -> ScenarioSpec:
    """The single :class:`ScenarioSpec` a point token denotes."""
    path, sep, index = token.partition("#")
    points = scenario_points(path)
    if not sep:
        if len(points) > 1:
            raise ScenarioError(
                [
                    f"{path}: sweep file with {len(points)} points; run "
                    f"the file itself (it expands) or pick one with "
                    f"{path}#<index>"
                ]
            )
        return points[0][1]
    try:
        chosen = int(index)
    except ValueError:
        raise ScenarioError([f"{token}: sweep index {index!r} is not an integer"])
    if not 0 <= chosen < len(points):
        raise ScenarioError(
            [
                f"{token}: sweep index {chosen} out of range "
                f"(file has {len(points)} points)"
            ]
        )
    return points[chosen][1]


def _run_scenario_token(token: str) -> str:
    """Module-level (hence picklable) runner for one scenario token."""
    return run_spec(scenario_spec_of(token))


def resolve(name: str) -> ExperimentSpec:
    """Look up a registry name or build a spec for a scenario token.

    For tokens, the returned :class:`ExperimentSpec` carries the
    *scenario's* name (sweep points already embed their ``@axis=value``
    label), so campaign artifacts are named after the scenario, not the
    file path.  Raises ``KeyError`` for unrecognised names and
    :class:`ScenarioError` for unloadable/invalid scenario files.
    """
    if name in REGISTRY:
        return REGISTRY[name]
    if is_scenario_token(name):
        spec = scenario_spec_of(name)
        description = spec.description or f"scenario {name.partition('#')[0]}"
        return ExperimentSpec(
            name=spec.name,
            description=description,
            runner=functools.partial(_run_scenario_token, name),
        )
    raise KeyError(name)


def expand_names(names: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Resolve a user-supplied experiment list.

    ``"all"`` expands to the canonical registry order and a scenario
    *sweep* file expands to its point tokens (``path#0``, ``path#1``,
    ...); duplicates are dropped keeping the first occurrence, so the
    result is deterministic for any input.  Returns ``(known,
    unknown)`` — ``known`` preserves request order and is ready to run,
    ``unknown`` preserves the order the unrecognised names first
    appeared.  A scenario file that fails to load stays in ``known``:
    the error belongs to the run (or ``repro scenario validate``), not
    to name resolution.
    """
    requested: List[str] = []
    for name in names:
        if name == "all":
            requested.extend(experiment_names())
        elif is_scenario_token(name) and "#" not in name:
            try:
                requested.extend(token for token, _ in scenario_points(name))
            except ScenarioError:
                requested.append(name)
        else:
            requested.append(name)
    seen = set()
    known: List[str] = []
    unknown: List[str] = []
    for name in requested:
        if name in seen:
            continue
        seen.add(name)
        if name in REGISTRY or is_scenario_token(name):
            known.append(name)
        else:
            unknown.append(name)
    return known, unknown
