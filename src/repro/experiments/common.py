"""Shared helpers for the per-figure experiment drivers.

Every experiment driver follows the same pattern: describe its setup as
a :class:`~repro.scenario.spec.ScenarioSpec` (or build a
:class:`~repro.hypervisor.system.VirtualizedSystem` directly for the
few bespoke cases), warm it up, measure over a window, and return a
small result dataclass that the benchmark harness formats with
:mod:`repro.analysis.reporting`.

The measurement protocols and the paper constants live in
:mod:`repro.scenario` — this module re-exports them so drivers (and
downstream users) keep one import point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.specs import MachineSpec, paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.base import Scheduler
from repro.schedulers.credit import CreditScheduler
from repro.scenario.defaults import (
    DEFAULT_MEASURE_TICKS,
    DEFAULT_WARMUP_TICKS,
    PAPER_LLC_CAP,
    PAPER_SMALL_LLC_CAP,
)
from repro.scenario.protocol import execution_time_sec, measured_ipc
from repro.workloads.base import Workload

__all__ = [
    "DEFAULT_MEASURE_TICKS",
    "DEFAULT_WARMUP_TICKS",
    "PAPER_LLC_CAP",
    "PAPER_SMALL_LLC_CAP",
    "ExecTimeResult",
    "build_system",
    "execution_time_sec",
    "measured_ipc",
    "solo_ipc_of",
]


def build_system(
    scheduler: Optional[Scheduler] = None,
    machine: Optional[MachineSpec] = None,
    **kwargs,
) -> VirtualizedSystem:
    """A system on the paper's machine with the given scheduler (XCS
    default)."""
    return VirtualizedSystem(
        scheduler if scheduler is not None else CreditScheduler(),
        machine if machine is not None else paper_machine(),
        **kwargs,
    )


def solo_ipc_of(
    workload: Workload,
    machine: Optional[MachineSpec] = None,
    warmup_ticks: int = DEFAULT_WARMUP_TICKS,
    measure_ticks: int = DEFAULT_MEASURE_TICKS,
) -> float:
    """Solo-run IPC of a workload pinned to core 0."""
    system = build_system(machine=machine)
    vm = system.create_vm(VmConfig(name="solo", workload=workload, pinned_cores=[0]))
    return measured_ipc(system, vm, warmup_ticks, measure_ticks)


@dataclass
class ExecTimeResult:
    """Execution time of a finite workload under some setup."""

    label: str
    seconds: float
