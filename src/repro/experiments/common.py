"""Shared helpers for the per-figure experiment drivers.

Every experiment driver follows the same pattern: build a
:class:`~repro.hypervisor.system.VirtualizedSystem` with the right
scheduler and VMs, warm it up, measure over a window, and return a small
result dataclass that the benchmark harness formats with
:mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hardware.specs import MachineSpec, paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VirtualMachine, VmConfig
from repro.schedulers.base import Scheduler
from repro.schedulers.credit import CreditScheduler
from repro.workloads.base import Workload

#: Default warm-up before any measurement window (ticks).
DEFAULT_WARMUP_TICKS = 30
#: Default measurement window (ticks).
DEFAULT_MEASURE_TICKS = 120

#: The booked pollution permit used throughout Section 4.3 (Fig 5).
PAPER_LLC_CAP = 250_000.0
#: The small permit of the scalability experiment (Fig 6).
PAPER_SMALL_LLC_CAP = 50_000.0


def build_system(
    scheduler: Optional[Scheduler] = None,
    machine: Optional[MachineSpec] = None,
    **kwargs,
) -> VirtualizedSystem:
    """A system on the paper's machine with the given scheduler (XCS
    default)."""
    return VirtualizedSystem(
        scheduler if scheduler is not None else CreditScheduler(),
        machine if machine is not None else paper_machine(),
        **kwargs,
    )


def measured_ipc(
    system: VirtualizedSystem,
    vm: VirtualMachine,
    warmup_ticks: int = DEFAULT_WARMUP_TICKS,
    measure_ticks: int = DEFAULT_MEASURE_TICKS,
) -> float:
    """Warm up, reset, measure: the VM's IPC over the window."""
    system.run_ticks(warmup_ticks)
    vm.reset_metrics()
    system.run_ticks(measure_ticks)
    return vm.vcpus[0].ipc


def solo_ipc_of(
    workload: Workload,
    machine: Optional[MachineSpec] = None,
    warmup_ticks: int = DEFAULT_WARMUP_TICKS,
    measure_ticks: int = DEFAULT_MEASURE_TICKS,
) -> float:
    """Solo-run IPC of a workload pinned to core 0."""
    system = build_system(machine=machine)
    vm = system.create_vm(VmConfig(name="solo", workload=workload, pinned_cores=[0]))
    return measured_ipc(system, vm, warmup_ticks, measure_ticks)


@dataclass
class ExecTimeResult:
    """Execution time of a finite workload under some setup."""

    label: str
    seconds: float


def execution_time_sec(
    system: VirtualizedSystem,
    vm: VirtualMachine,
    max_ticks: int = 200_000,
) -> float:
    """Run until ``vm`` finishes and return its completion time (seconds)."""
    while not vm.finished:
        if system.tick_index >= max_ticks:
            raise RuntimeError(_budget_exhausted_message(system, vm, max_ticks))
        system.run_ticks(1)
    finish_usec = vm.finish_time_usec
    assert finish_usec is not None
    return finish_usec / 1e6


def _budget_exhausted_message(
    system: VirtualizedSystem, vm: VirtualMachine, max_ticks: int
) -> str:
    """Diagnosable tick-budget failure: simulated time + VM progress.

    Campaign artifacts capture this text verbatim, so it must say *how
    far* the VM got, not just that the budget ran out.
    """
    elapsed_sim_sec = system.engine.clock.now_usec / 1e6
    done = sum(vcpu.progress.instructions_done for vcpu in vm.vcpus)
    total = sum(
        vcpu.progress.workload.total_instructions or 0.0 for vcpu in vm.vcpus
    )
    progress = f"{done:.4g}/{total:.4g} instructions"
    if total > 0:
        progress += f" ({100.0 * done / total:.1f}%)"
    return (
        f"{vm.name} did not finish within {max_ticks} ticks "
        f"({elapsed_sim_sec:.3f} simulated seconds); progress: {progress}"
    )
