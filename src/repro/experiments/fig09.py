"""Fig 9 — Migrating vCPUs could impact memory-bound applications.

The socket-dedication monitoring strategy periodically migrates every
non-sampled vCPU to the other socket.  This experiment isolates that
cost on the two-socket NUMA machine (PowerEdge R420): a single-vCPU VM
starts on numa0 (where its memory lives); KS4Xen periodically migrates it
to numa1 and back after a random dwell — while away, all its memory
accesses are remote and its LLC is cold.

Expected shape (paper): applications are not equally affected; the
memory-intensive ones (milc, omnetpp, lbm) suffer the most, up to ~12%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.metrics import slowdown_percent
from repro.analysis.reporting import format_table
from repro.hardware.specs import numa_machine
from repro.scenario import (
    MachineSpecChoice,
    MigrationSpec,
    ScenarioSpec,
    VmSpec,
    WorkloadSpec,
    materialize,
)

from .common import execution_time_sec

#: The eight applications of the paper's Fig 9.
FIG9_APPS = ("mcf", "soplex", "milc", "omnetpp", "xalan", "astar", "bzip", "lbm")
DEFAULT_WORK_INSTRUCTIONS = 1.0e9


@dataclass
class Fig09Result:
    #: app -> execution-time degradation % caused by periodic migration.
    degradation: Dict[str, float] = field(default_factory=dict)
    migrations: Dict[str, int] = field(default_factory=dict)


def _run(app: str, migrate: bool, work: float, period_ticks: int, seed: int) -> tuple:
    migration = None
    if migrate:
        migration = MigrationSpec(
            home_core=0,
            remote_core=numa_machine().cores_of_socket(1)[0],
            period_ticks=period_ticks,
            seed=seed,
        )
    built = materialize(
        ScenarioSpec(
            name=f"fig09-{app}{'-migrated' if migrate else ''}",
            machine=MachineSpecChoice(preset="numa"),
            vms=(
                VmSpec(
                    name=app,
                    workload=WorkloadSpec(app=app, total_instructions=work),
                    memory_node=0,
                    pinned_cores=(0,),
                ),
            ),
            migration=migration,
        )
    )
    seconds = execution_time_sec(built.system, built.vm(app))
    return seconds, (built.migrator.migrations if built.migrator else 0)


def run(
    apps: Sequence[str] = FIG9_APPS,
    work_instructions: float = DEFAULT_WORK_INSTRUCTIONS,
    period_ticks: int = 10,
    seed: int = 0,
) -> Fig09Result:
    result = Fig09Result()
    for app in apps:
        baseline, __ = _run(app, False, work_instructions, period_ticks, seed)
        migrated, count = _run(app, True, work_instructions, period_ticks, seed)
        result.degradation[app] = slowdown_percent(baseline, migrated)
        result.migrations[app] = count
    return result


def format_report(result: Fig09Result) -> str:
    rows = [
        [app, result.degradation[app], result.migrations[app]]
        for app in result.degradation
    ]
    return format_table(
        ["app", "perf degradation %", "# migrations"],
        rows,
        title="Fig 9: cost of periodic vCPU migration (socket dedication)",
    )
