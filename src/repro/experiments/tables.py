"""Tables 1 and 2 of the paper.

Table 1 describes the experimental machine; Table 2 maps the experiment
VM names to the SPEC CPU2006 applications they host.  The "experiments"
regenerate both from the model, proving the encoded configuration matches
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.hardware.specs import KIB, MIB, MachineSpec, paper_machine
from repro.workloads.profiles import DISRUPTIVE_APPS, SENSITIVE_APPS


@dataclass
class Table1Result:
    rows: List[List[str]]


def run_table1(machine: Optional[MachineSpec] = None) -> Table1Result:
    if machine is None:
        machine = paper_machine()
    socket = machine.sockets[0]
    rows = [
        ["Main memory", f"{machine.memory_bytes // MIB} MB"],
        [
            "L1 cache",
            f"L1 D {socket.l1d.size_bytes // KIB} KB, "
            f"L1 I {socket.l1i.size_bytes // KIB} KB, "
            f"{socket.l1d.associativity}-way",
        ],
        [
            "L2 cache",
            f"L2 U {socket.l2.size_bytes // KIB} KB, "
            f"{socket.l2.associativity}-way",
        ],
        [
            "LLC",
            f"{socket.llc.size_bytes // MIB} MB, "
            f"{socket.llc.associativity}-way",
        ],
        [
            "Processor",
            f"{machine.num_sockets} Socket, {socket.cores} Cores/socket "
            f"@ {socket.freq_ghz:.1f} GHz",
        ],
    ]
    return Table1Result(rows=rows)


def format_table1(result: Table1Result) -> str:
    return format_table(
        ["component", "configuration"], result.rows,
        title="Table 1: experimental machine",
    )


@dataclass
class Table2Result:
    mapping: Dict[str, str]


def run_table2() -> Table2Result:
    mapping = {}
    mapping.update(SENSITIVE_APPS)
    mapping.update(DISRUPTIVE_APPS)
    return Table2Result(mapping=mapping)


def format_table2(result: Table2Result) -> str:
    rows = [[vm, app] for vm, app in sorted(result.mapping.items())]
    return format_table(
        ["VM name", "application"], rows, title="Table 2: experimental VMs"
    )
