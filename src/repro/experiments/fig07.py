"""Fig 7 — Pisces architecture.

Fig 7 in the paper is a structural diagram: Linux and several Pisces
co-kernel enclaves side by side, each enclave owning disjoint cores and
memory, with no hypervisor multiplexing between them.  The corresponding
"experiment" verifies those structural properties on the model:

* every enclave's cores are dedicated (no sharing, admission enforces it),
* enclaves run without any scheduler preemption (100% CPU duty),
* enclaves on the same socket still share the LLC — the one resource the
  co-kernel cannot partition, which Fig 8 then exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.scenario import (
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    materialize,
)


@dataclass
class Fig07Result:
    """Structural audit of a two-enclave Pisces deployment."""

    enclaves: List[str] = field(default_factory=list)
    cores: Dict[str, List[int]] = field(default_factory=dict)
    duty_cycle: Dict[str, float] = field(default_factory=dict)
    #: LLC lines held by each enclave on the shared socket.
    llc_occupancy: Dict[str, float] = field(default_factory=dict)
    cores_disjoint: bool = False
    llc_shared: bool = False


def run(num_ticks: int = 60) -> Fig07Result:
    built = materialize(
        ScenarioSpec(
            name="fig07",
            scheduler=SchedulerChoice(kind="pisces"),
            vms=(
                VmSpec(
                    name="enclave-gcc",
                    workload=WorkloadSpec(app="gcc"),
                    pinned_cores=(0,),
                ),
                VmSpec(
                    name="enclave-lbm",
                    workload=WorkloadSpec(app="lbm"),
                    pinned_cores=(1,),
                ),
            ),
        )
    )
    system, scheduler = built.system, built.scheduler
    vm_a, vm_b = built.vm("enclave-gcc"), built.vm("enclave-lbm")
    ran: Dict[int, int] = {vm_a.vcpus[0].gid: 0, vm_b.vcpus[0].gid: 0}

    def observer(sys_, tick_index) -> None:
        for gid in ran:
            if gid in sys_.last_tick_cycles:
                ran[gid] += 1

    system.add_tick_observer(observer)
    system.run_ticks(num_ticks)

    result = Fig07Result()
    domain = system.llc_domains[0]
    for vm in (vm_a, vm_b):
        enclave = scheduler.enclave_of(vm)
        result.enclaves.append(vm.name)
        result.cores[vm.name] = list(enclave.cores)
        result.duty_cycle[vm.name] = ran[vm.vcpus[0].gid] / num_ticks
        result.llc_occupancy[vm.name] = domain.occupancy_of(vm.vcpus[0].gid)
    all_cores = [c for cores in result.cores.values() for c in cores]
    result.cores_disjoint = len(all_cores) == len(set(all_cores))
    result.llc_shared = all(
        occ > 0 for occ in result.llc_occupancy.values()
    )
    return result


def format_report(result: Fig07Result) -> str:
    rows = [
        [
            name,
            ",".join(str(c) for c in result.cores[name]),
            result.duty_cycle[name],
            result.llc_occupancy[name],
        ]
        for name in result.enclaves
    ]
    table = format_table(
        ["enclave", "dedicated cores", "CPU duty", "LLC lines held"],
        rows,
        title="Fig 7: Pisces architecture audit",
    )
    return table + (
        f"\ncores disjoint: {result.cores_disjoint}; "
        f"LLC shared across enclaves: {result.llc_shared}"
    )
