"""Experiment drivers: one module per paper figure/table.

Each ``figNN`` module exposes ``run(...) -> FigNNResult`` plus
``format_report(result) -> str``; benchmarks and examples are thin
wrappers over these.
"""

from . import (
    export,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    tables,
)

__all__ = [
    "export",
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "tables",
]
