"""Fig 10 — vCPU isolation can be avoided in some situations.

Section 4.5's two isolation-skipping heuristics, measured:

* **hmmer** (almost no LLC misses) is sampled isolated (socket dedicated)
  and not isolated while colocated with several disruptive vCPUs: the two
  llc_cap_act values are almost identical — low-miss vCPUs need no
  isolation.
* **bzip** colocated only with hmmer instances (quiet co-runners) is
  likewise sampled both ways: again nearly identical — isolation is
  unnecessary when all co-runners are quiet.

For contrast, :func:`run` also measures bzip among *disruptive*
co-runners, where the contended (non-isolated) measurement genuinely
diverges — the case where isolation (or replay) is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.core.monitor import IsolationPolicy, SocketDedicationSampler
from repro.scenario import (
    MachineSpecChoice,
    ScenarioSpec,
    VmSpec,
    WorkloadSpec,
    materialize,
)


@dataclass
class Fig10Case:
    label: str
    isolated: float
    not_isolated: float

    @property
    def absolute_gap(self) -> float:
        """|not_isolated - isolated| in misses/ms — the quantity the
        paper's bar plot compares (its axis spans hundreds of thousands,
        so a few-thousand gap reads as "almost nil")."""
        return abs(self.not_isolated - self.isolated)

    @property
    def relative_gap_percent(self) -> float:
        if self.isolated == 0:
            return 0.0 if self.not_isolated == 0 else float("inf")
        return abs(self.not_isolated - self.isolated) / self.isolated * 100.0


@dataclass
class Fig10Result:
    cases: List[Fig10Case] = field(default_factory=list)

    def case(self, label: str) -> Fig10Case:
        for c in self.cases:
            if c.label == label:
                return c
        raise KeyError(label)


def _measure(app: str, corunners: Sequence[str], warmup: int,
             sample_ticks: int) -> Fig10Case:
    """Measure ``app``'s llc_cap_act isolated vs not, among corunners."""
    vms = [
        VmSpec(name=app, workload=WorkloadSpec(app=app), pinned_cores=(0,))
    ]
    for i, co in enumerate(corunners):
        vms.append(
            VmSpec(
                name=f"{co}-{i}",
                workload=WorkloadSpec(app=co),
                pinned_cores=(1 + (i % 3),),
            )
        )
    built = materialize(
        ScenarioSpec(
            name=f"fig10-{app}",
            machine=MachineSpecChoice(preset="numa"),
            vms=tuple(vms),
        )
    )
    system = built.system
    target = built.vm(app)
    system.run_ticks(warmup)
    sampler = SocketDedicationSampler(system)
    not_isolated = sampler._contended_sample(target, sample_ticks)
    isolated = sampler.sample(target, sample_ticks)
    return Fig10Case(label=app, isolated=isolated, not_isolated=not_isolated)


def run(warmup_ticks: int = 30, sample_ticks: int = 6) -> Fig10Result:
    result = Fig10Result()
    # hmmer among disruptors: its own pollution is tiny either way.
    case = _measure("hmmer", ["lbm", "blockie", "mcf"], warmup_ticks, sample_ticks)
    result.cases.append(case)
    # bzip among quiet hmmer co-runners: contended ~= intrinsic.
    case = _measure("bzip", ["hmmer", "hmmer", "hmmer"], warmup_ticks, sample_ticks)
    result.cases.append(case)
    # Contrast: bzip among disruptors — the measurements diverge.
    case = _measure("bzip", ["lbm", "blockie", "mcf"], warmup_ticks, sample_ticks)
    case.label = "bzip-vs-disruptors"
    result.cases.append(case)
    return result


def format_report(result: Fig10Result) -> str:
    rows = [
        [c.label, c.not_isolated, c.isolated, c.absolute_gap]
        for c in result.cases
    ]
    return format_table(
        ["case", "llc_cap_act not isolated", "llc_cap_act isolated",
         "abs gap (miss/ms)"],
        rows,
        title="Fig 10: when vCPU isolation can be skipped",
    )
