"""Fig 2 — Impact of LLC contention explained with LLC misses.

Zooms in on the first time slices of the C2 representative VM (the most
penalised type) and records its LLC misses per tick in four situations:
alone, alternative, parallel, and alternative+parallel.

Expected shape (paper): alone, misses only occur during the first tick
(data loading) and vanish afterwards; the alternative execution has a
zigzag — the first tick of each time slice reloads the data evicted by
the disruptor during the previous slice; the parallel executions show a
persistently high miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.scenario import ScenarioSpec, VmSpec, WorkloadSpec, materialize
from repro.workloads.micro import CacheFitCategory, category_pairs

SITUATIONS = ("alone", "alternative", "parallel", "alter+para")


@dataclass
class Fig02Result:
    """LLC misses of v2_rep per tick, per situation."""

    ticks: List[int]
    misses: Dict[str, List[float]] = field(default_factory=dict)


def _situation_spec(situation: str) -> ScenarioSpec:
    pairs = category_pairs()
    rep_bytes = pairs[CacheFitCategory.C2_FITS_LLC].representative_bytes
    dis_bytes = pairs[CacheFitCategory.C2_FITS_LLC].disruptive_bytes
    vms = [
        VmSpec(
            name="v2rep",
            workload=WorkloadSpec(kind="micro", wss_bytes=rep_bytes),
            pinned_cores=(0,),
        )
    ]
    disruptor = WorkloadSpec(kind="micro", wss_bytes=dis_bytes, disruptive=True)
    if situation in ("alternative", "alter+para"):
        vms.append(VmSpec(name="dis-alt", workload=disruptor, pinned_cores=(0,)))
    if situation in ("parallel", "alter+para"):
        vms.append(VmSpec(name="dis-par", workload=disruptor, pinned_cores=(1,)))
    return ScenarioSpec(name=f"fig02-{situation}", vms=tuple(vms))


def _run_situation(situation: str, num_ticks: int) -> List[float]:
    built = materialize(_situation_spec(situation))
    system = built.system
    rep = built.vm("v2rep")
    per_tick: List[float] = []

    def observer(sys_, tick_index) -> None:
        per_tick.append(sys_.last_tick_misses.get(rep.vcpus[0].gid, 0.0))

    system.add_tick_observer(observer)
    system.run_ticks(num_ticks)
    return per_tick


def run(num_ticks: int = 21) -> Fig02Result:
    """Record the first ``num_ticks`` ticks (paper: 21 = 7 slices)."""
    result = Fig02Result(ticks=list(range(1, num_ticks + 1)))
    for situation in SITUATIONS:
        result.misses[situation] = _run_situation(situation, num_ticks)
    return result


def format_report(result: Fig02Result) -> str:
    rows = []
    for i, tick in enumerate(result.ticks):
        rows.append(
            [tick * 10]
            + [result.misses[s][i] for s in SITUATIONS]
        )
    return format_table(
        ["tick (ms)"] + list(SITUATIONS),
        rows,
        title="Fig 2: v2_rep LLC misses per 10ms tick (1 slice = 3 ticks)",
    )
