"""Fig 8 — Comparison of Kyoto with Pisces.

Measures vsen1's (gcc) execution time in four configurations:

* **Pisces, alone** — gcc's enclave owns its core; no co-runner.
* **Pisces, colocated** — a vdis1 (lbm) enclave runs on another core of
  the same socket.  Pisces isolates every resource *except* the LLC, so
  performance predictability is lost (paper: ~24% slower).
* **KS4Pisces, alone / colocated** — with pollution permits enforced by
  duty-cycling the polluter's cores, the colocated time returns close to
  the solo time.

Expected shape (paper): Pisces colocated >> Pisces alone; KS4Pisces
colocated ≈ KS4Pisces alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import slowdown_percent
from repro.analysis.reporting import format_table
from repro.scenario import (
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    materialize,
)

from .common import PAPER_LLC_CAP, execution_time_sec

#: Work per run; sized so solo execution takes a few simulated seconds.
DEFAULT_WORK_INSTRUCTIONS = 2.0e9


@dataclass
class Fig08Result:
    #: configuration label -> vsen1 execution time (seconds).
    exec_time: Dict[str, float]

    @property
    def pisces_interference_percent(self) -> float:
        return slowdown_percent(
            self.exec_time["pisces-alone"], self.exec_time["pisces-colocated"]
        )

    @property
    def ks4pisces_interference_percent(self) -> float:
        return slowdown_percent(
            self.exec_time["ks4pisces-alone"],
            self.exec_time["ks4pisces-colocated"],
        )


def _run(scheduler_kind: str, colocated: bool, llc_cap, work: float) -> float:
    vms = [
        VmSpec(
            name="vsen1",
            workload=WorkloadSpec(app="gcc", total_instructions=work),
            llc_cap=llc_cap,
            pinned_cores=(0,),
        )
    ]
    if colocated:
        vms.append(
            VmSpec(
                name="vdis1",
                workload=WorkloadSpec(app="lbm"),
                llc_cap=llc_cap,
                pinned_cores=(1,),
            )
        )
    built = materialize(
        ScenarioSpec(
            name=f"fig08-{scheduler_kind}{'-colocated' if colocated else ''}",
            scheduler=SchedulerChoice(kind=scheduler_kind),
            vms=tuple(vms),
        )
    )
    return execution_time_sec(built.system, built.vm("vsen1"))


def run(work_instructions: float = DEFAULT_WORK_INSTRUCTIONS) -> Fig08Result:
    times = {
        "pisces-alone": _run("pisces", False, None, work_instructions),
        "pisces-colocated": _run("pisces", True, None, work_instructions),
        "ks4pisces-alone": _run(
            "ks4pisces", False, PAPER_LLC_CAP, work_instructions
        ),
        "ks4pisces-colocated": _run(
            "ks4pisces", True, PAPER_LLC_CAP, work_instructions
        ),
    }
    return Fig08Result(exec_time=times)


def format_report(result: Fig08Result) -> str:
    rows = [[label, secs] for label, secs in result.exec_time.items()]
    table = format_table(
        ["configuration", "vsen1 exec time (s)"],
        rows,
        title="Fig 8: Pisces vs KS4Pisces",
    )
    return table + (
        f"\nPisces interference: {result.pisces_interference_percent:.1f}% "
        f"(paper ~24%); KS4Pisces interference: "
        f"{result.ks4pisces_interference_percent:.1f}% (paper ~0%)"
    )
