"""Fig 1 — LLC contention could impact some applications.

Each category's representative micro VM (C1/C2/C3) is executed alone and
against each category's disruptive micro VM in three situations:
*alternative* (same core, time-shared), *parallel* (different cores) and
*combined* (one disruptor sharing the core plus one on another core).
The output is the percentage performance degradation matrix of the
paper's three bar groups.

Expected shape (paper): C1 representatives are agnostic to everything;
C2/C3 representatives are severely hurt by C2/C3 disruptors; parallel
contention is far more devastating (up to ~70%) than alternative
execution (~13%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.metrics import degradation_percent
from repro.analysis.reporting import format_table
from repro.scenario import ScenarioSpec, VmSpec, WorkloadSpec, materialize
from repro.workloads.micro import CacheFitCategory, category_pairs

from .common import measured_ipc

#: The three execution situations of Section 2.2.4.
MODES = ("alternative", "parallel", "combined")


@dataclass
class Fig01Result:
    """Degradation of each representative VM in every situation."""

    #: (rep_category, dis_category, mode) -> degradation %.
    degradation: Dict[Tuple[int, int, str], float] = field(default_factory=dict)

    def of(self, rep: int, dis: int, mode: str) -> float:
        return self.degradation[(rep, dis, mode)]


def _situation_spec(rep_bytes: int, dis_bytes: int, mode: str) -> ScenarioSpec:
    vms = [
        VmSpec(
            name="rep",
            workload=WorkloadSpec(kind="micro", wss_bytes=rep_bytes),
            pinned_cores=(0,),
        )
    ]
    disruptor = WorkloadSpec(kind="micro", wss_bytes=dis_bytes, disruptive=True)
    if mode in ("alternative", "combined"):
        vms.append(VmSpec(name="dis-alt", workload=disruptor, pinned_cores=(0,)))
    if mode in ("parallel", "combined"):
        vms.append(VmSpec(name="dis-par", workload=disruptor, pinned_cores=(1,)))
    return ScenarioSpec(name=f"fig01-{mode}", vms=tuple(vms))


def _run_situation(rep_bytes: int, dis_bytes: int, mode: str,
                   warmup: int, measure: int) -> float:
    built = materialize(_situation_spec(rep_bytes, dis_bytes, mode))
    return measured_ipc(built.system, built.vm("rep"), warmup, measure)


def run(warmup_ticks: int = 30, measure_ticks: int = 120) -> Fig01Result:
    """Execute the full Fig 1 campaign (9 rep/dis pairs x 3 situations)."""
    pairs = category_pairs()
    result = Fig01Result()
    solo = {}
    for rep_cat, rep_pair in pairs.items():
        built = materialize(
            ScenarioSpec(
                name="fig01-solo",
                vms=(
                    VmSpec(
                        name="rep",
                        workload=WorkloadSpec(
                            kind="micro",
                            wss_bytes=rep_pair.representative_bytes,
                        ),
                        pinned_cores=(0,),
                    ),
                ),
            )
        )
        solo[rep_cat] = measured_ipc(
            built.system, built.vm("rep"), warmup_ticks, measure_ticks
        )
    for rep_cat, rep_pair in pairs.items():
        for dis_cat, dis_pair in pairs.items():
            for mode in MODES:
                ipc = _run_situation(
                    rep_pair.representative_bytes,
                    dis_pair.disruptive_bytes,
                    mode,
                    warmup_ticks,
                    measure_ticks,
                )
                result.degradation[(int(rep_cat), int(dis_cat), mode)] = (
                    degradation_percent(solo[rep_cat], ipc)
                )
    return result


def format_report(result: Fig01Result) -> str:
    """The three bar groups of Fig 1 as one table."""
    rows: List[List] = []
    for mode in MODES:
        for rep in (1, 2, 3):
            rows.append(
                [mode, f"v{rep}_rep"]
                + [result.of(rep, dis, mode) for dis in (1, 2, 3)]
            )
    return format_table(
        ["execution", "representative", "v1_dis %", "v2_dis %", "v3_dis %"],
        rows,
        title="Fig 1: % perf degradation of representative VMs",
    )
