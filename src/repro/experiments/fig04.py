"""Fig 4 — Equation 1 vs LLC misses: which indicator for llc_cap?

Runs the Section 4.2 campaign over the ten applications: each measured
alone for its LLCM and equation-1 indicators, then in parallel with every
other application for its *real* aggressiveness (average degradation
caused).  Kendall's tau decides which indicator's ordering is closer to
the real one.

Expected result (paper): real order o1 = (blockie, lbm, mcf, soplex,
milc, omnetpp, gcc, xalan, astar, bzip); LLCM order o2 puts milc first;
equation-1 order o3 = (lbm, blockie, milc, mcf, soplex, ...).  o3 is
closer to o1 than o2 — equation 1 is the better indicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.aggressiveness import (
    AggressivenessReport,
    CampaignConfig,
    OrderingComparison,
    compare_orderings,
    run_campaign,
)
from repro.analysis.reporting import format_table
from repro.workloads.profiles import FIG4_APPLICATIONS


@dataclass
class Fig04Result:
    reports: Dict[str, AggressivenessReport]
    comparison: OrderingComparison


def run(
    warmup_ticks: int = 20, measure_ticks: int = 60
) -> Fig04Result:
    config = CampaignConfig(warmup_ticks=warmup_ticks, measure_ticks=measure_ticks)
    reports = run_campaign(FIG4_APPLICATIONS, config)
    return Fig04Result(reports=reports, comparison=compare_orderings(reports))


def format_report(result: Fig04Result) -> str:
    rows: List[List] = []
    for app in result.comparison.real_order:
        report = result.reports[app]
        rows.append(
            [
                app,
                report.real_aggressiveness,
                report.solo.llcm,
                report.solo.equation1,
            ]
        )
    table = format_table(
        ["app", "avg aggressivity %", "LLCM (mpki)", "equation 1 (miss/ms)"],
        rows,
        title="Fig 4: aggressiveness vs indicators (descending real order)",
    )
    cmp = result.comparison
    footer = (
        f"\no1 (real)      : {', '.join(cmp.real_order)}"
        f"\no2 (LLCM)      : {', '.join(cmp.llcm_order)}"
        f"\no3 (equation 1): {', '.join(cmp.equation1_order)}"
        f"\nKendall tau(o1,o2) = {cmp.tau_llcm:.3f}; "
        f"tau(o1,o3) = {cmp.tau_equation1:.3f}; "
        f"equation 1 {'wins' if cmp.equation1_wins else 'loses'}"
    )
    return table + footer
