"""Fig 12 — The overhead incurred by KS4Xen is near zero.

Two VMs hosting the same CPU-bound application (povray) share one core;
the experiment measures the first VM's execution time under XCS and under
KS4Xen while sweeping the scheduler tick (the "time slice" / scheduling
period, i.e. the monitoring-intervention frequency) from 1 ms to 30 ms.

Expected shape (paper): the XCS and KS4Xen curves coincide — the PMC
gathering of the monitoring system costs nothing measurable, at any
intervention frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.scenario import (
    ScenarioSpec,
    SchedulerChoice,
    SystemSpec,
    VmSpec,
    WorkloadSpec,
    materialize,
)
from repro.simulation.clock import msec_to_usec

from .common import PAPER_LLC_CAP, execution_time_sec

DEFAULT_SLICES_MS = (1, 3, 5, 10, 15, 20, 30)
DEFAULT_WORK_INSTRUCTIONS = 2.0e9


@dataclass
class Fig12Result:
    slices_ms: List[int]
    exec_time_xcs: List[float] = field(default_factory=list)
    exec_time_ks4xen: List[float] = field(default_factory=list)

    @property
    def max_overhead_percent(self) -> float:
        """Largest relative gap between the two curves."""
        worst = 0.0
        for xcs, ks in zip(self.exec_time_xcs, self.exec_time_ks4xen):
            if xcs > 0:
                worst = max(worst, abs(ks - xcs) / xcs * 100.0)
        return worst


def _run(scheduler_kind: str, slice_ms: int, llc_cap, work: float) -> float:
    workload = WorkloadSpec(app="povray", total_instructions=work)
    built = materialize(
        ScenarioSpec(
            name=f"fig12-{scheduler_kind}-{slice_ms}ms",
            scheduler=SchedulerChoice(kind=scheduler_kind),
            system=SystemSpec(
                tick_usec=msec_to_usec(slice_ms), substeps_per_tick=4
            ),
            vms=(
                VmSpec(
                    name="povray-a",
                    workload=workload,
                    llc_cap=llc_cap,
                    pinned_cores=(0,),
                ),
                VmSpec(
                    name="povray-b",
                    workload=workload,
                    llc_cap=llc_cap,
                    pinned_cores=(0,),
                ),
            ),
        )
    )
    return execution_time_sec(built.system, built.vm("povray-a"))


def run(
    slices_ms: Sequence[int] = DEFAULT_SLICES_MS,
    work_instructions: float = DEFAULT_WORK_INSTRUCTIONS,
) -> Fig12Result:
    result = Fig12Result(slices_ms=list(slices_ms))
    for slice_ms in slices_ms:
        result.exec_time_xcs.append(
            _run("xcs", slice_ms, None, work_instructions)
        )
        result.exec_time_ks4xen.append(
            _run("ks4xen", slice_ms, PAPER_LLC_CAP, work_instructions)
        )
    return result


def format_report(result: Fig12Result) -> str:
    rows = [
        [s, x, k]
        for s, x, k in zip(
            result.slices_ms, result.exec_time_xcs, result.exec_time_ks4xen
        )
    ]
    table = format_table(
        ["time slice (ms)", "XCS exec time (s)", "KS4Xen exec time (s)"],
        rows,
        title="Fig 12: monitoring overhead across scheduling periods",
    )
    return table + (
        f"\nmax overhead: {result.max_overhead_percent:.2f}% (paper: ~0%)"
    )
