"""Chaos experiment — Fig 5 colocation under monitor failure injection.

Re-runs the Fig 5 setup (vsen1 = gcc vs vdis = lbm, both booked the
paper's 250k llc_cap) with the full resilient monitoring pipeline in
place of a single monitor, and sweeps a uniform failure rate across
every registered fault site (:mod:`repro.faults`):

* replay unavailable / slow / stale,
* socket-dedication migration failures,
* PMC read corruption (stale / wrapped / garbage) and transient monitor
  exceptions.

What the sweep must show (the robustness claims of this reproduction):

1. the engine **never crashes**, all the way to a 100 % failure rate —
   exhausted monitors degrade to the EWMA last-good estimate,
2. vsen1's protection degrades *gracefully*: at moderate failure rates
   (<= 20 %) its degradation stays within 2x the fault-free value,
3. quota never sinks below the configured bank bound
   (``quota_min_factor``), so a lying monitor cannot park a VM forever,
4. every injected fault is visible in telemetry: the plan's ledger, the
   resilient monitor's counters and the engine's failure counters all
   reconcile.

All faults draw from one injected rng stream (``faults.plan``), so the
whole sweep is bit-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import normalized_performance
from repro.analysis.reporting import format_table
from repro.hardware.specs import numa_machine
from repro.scenario import (
    FaultsSpec,
    MachineSpecChoice,
    MonitorSpec,
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    materialize,
)
from repro.workloads.profiles import application_workload

from .common import PAPER_LLC_CAP, measured_ipc, solo_ipc_of

#: Monitor failure rates swept by the experiment.
FAILURE_RATES = (0.0, 0.05, 0.1, 0.2, 0.5, 1.0)

#: Bank bound used by the sweep: quota can never sink below
#: ``-CHAOS_QUOTA_MIN_FACTOR * llc_cap``.
CHAOS_QUOTA_MIN_FACTOR = 3.0


@dataclass
class ChaosPoint:
    """One failure-rate point of the sweep."""

    rate: float
    #: False only if the engine crashed — which would fail the claim.
    completed: bool = False
    error: Optional[str] = None
    normalized_perf: float = 0.0
    punishments_sen: int = 0
    punishments_dis: int = 0
    #: The fault plan's own per-site ledger.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Failure-path counters of the resilient monitor and the engine.
    failovers: int = 0
    retries: int = 0
    rejected_samples: int = 0
    breaker_skips: int = 0
    last_good_fallbacks: int = 0
    monitor_failures: int = 0
    implausible_samples: int = 0
    estimated_debits: int = 0
    #: Minimum quota observed across both accounts (bank-bound check).
    min_quota: float = 0.0

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    @property
    def degradation(self) -> float:
        return 1.0 - self.normalized_perf


@dataclass
class ChaosResult:
    solo_ipc: float = 0.0
    points: List[ChaosPoint] = field(default_factory=list)


def _run_point(
    rate: float,
    solo: float,
    llc_cap: float,
    warmup: int,
    measure: int,
) -> ChaosPoint:
    point = ChaosPoint(rate=rate)
    built = materialize(
        ScenarioSpec(
            name=f"chaos-{rate:g}",
            machine=MachineSpecChoice(preset="numa"),
            scheduler=SchedulerChoice(
                kind="ks4xen", quota_min_factor=CHAOS_QUOTA_MIN_FACTOR
            ),
            # Two retries before failing over: transient replay faults
            # are far cheaper to retry than a socket-dedication window,
            # whose migrations perturb the co-located VMs (Fig 9).
            monitor=MonitorSpec(strategy="resilient", retries=2),
            faults=FaultsSpec(uniform_rate=rate),
            vms=(
                VmSpec(
                    name="vsen1",
                    workload=WorkloadSpec(app="gcc"),
                    llc_cap=llc_cap,
                    pinned_cores=(0,),
                ),
                VmSpec(
                    name="vdis",
                    workload=WorkloadSpec(app="lbm"),
                    llc_cap=llc_cap,
                    pinned_cores=(1,),
                ),
            ),
        )
    )
    system = built.system
    plan = built.fault_plan
    monitor = built.monitor
    engine = built.kyoto
    assert plan is not None and monitor is not None and engine is not None
    sen, dis = built.vm("vsen1"), built.vm("vdis")
    min_quota = 0.0

    def observer(sys_, tick_index) -> None:
        nonlocal min_quota
        for vm in (sen, dis):
            quota = engine.quota(vm)
            if quota is not None:
                min_quota = min(min_quota, quota)

    system.add_tick_observer(observer)
    try:
        ipc = measured_ipc(system, sen, warmup, measure)
    except Exception as exc:  # a crash here falsifies the robustness claim
        point.error = f"{type(exc).__name__}: {exc}"
        return point
    finally:
        built.uninstall_faults()
    point.completed = True
    point.normalized_perf = normalized_performance(solo, ipc)
    point.punishments_sen = engine.punishments(sen)
    point.punishments_dis = engine.punishments(dis)
    point.injected = dict(plan.injected)
    point.failovers = monitor.failovers
    point.retries = monitor.retries_performed
    point.rejected_samples = monitor.rejected_samples
    point.breaker_skips = monitor.breaker_skips
    point.last_good_fallbacks = monitor.last_good_fallbacks
    point.monitor_failures = engine.monitor_failures
    point.implausible_samples = engine.implausible_samples
    point.estimated_debits = engine.estimated_debits
    point.min_quota = min_quota
    return point


def run(
    llc_cap: float = PAPER_LLC_CAP,
    warmup_ticks: int = 30,
    measure_ticks: int = 200,
) -> ChaosResult:
    result = ChaosResult()
    result.solo_ipc = solo_ipc_of(
        application_workload("gcc"),
        machine=numa_machine(),
        warmup_ticks=warmup_ticks,
        measure_ticks=measure_ticks,
    )
    for rate in FAILURE_RATES:
        result.points.append(
            _run_point(rate, result.solo_ipc, llc_cap, warmup_ticks, measure_ticks)
        )
    return result


def format_report(result: ChaosResult) -> str:
    quota_floor = -CHAOS_QUOTA_MIN_FACTOR * PAPER_LLC_CAP
    rows = []
    for point in result.points:
        rows.append(
            [
                f"{point.rate:.0%}",
                "yes" if point.completed else f"CRASH: {point.error}",
                point.normalized_perf,
                point.degradation,
                point.injected_total,
                point.failovers,
                point.last_good_fallbacks,
                point.estimated_debits,
                point.min_quota,
            ]
        )
    table = format_table(
        ["fail rate", "completed", "vsen1 norm perf", "degradation",
         "#faults", "#failover", "#fallback", "#estimated", "min quota"],
        rows,
        title=(
            "Chaos: Fig 5 colocation (gcc vs lbm) under monitor failure "
            "injection"
        ),
    )
    base = next(
        (p.degradation for p in result.points if p.rate == 0.0 and p.completed),
        None,
    )
    footer = []
    if base is not None:
        bound = max(2.0 * base, 0.05)
        moderate = [
            p for p in result.points if 0.0 < p.rate <= 0.2 and p.completed
        ]
        graceful = all(p.degradation <= bound for p in moderate)
        footer.append(
            f"fault-free degradation: {base:.3f}; graceful (<= "
            f"{bound:.3f} up to 20% failures): {'yes' if graceful else 'NO'}"
        )
    bound_held = all(
        p.min_quota >= quota_floor - 1e-6 for p in result.points
    )
    footer.append(
        f"quota bank bound: {quota_floor:,.0f} (never exceeded: "
        f"{'yes' if bound_held else 'NO'})"
    )
    return table + "\n" + "\n".join(footer)
