"""Fig 6 — KS4Xen scalability.

Runs vsen1 (gcc, booked 250k) while varying the number of colocated
disruptive vCPUs (vdis1 = lbm instances, each booked 50k) from 1 to 15 —
up to 16 vCPUs on the 4-core socket, the consolidation ratio of [10].

Expected shape (paper): vsen1's normalised performance stays ~1.0
regardless of the number of disturbers, because every disturber is held
to its (small) pollution permit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.metrics import normalized_performance
from repro.analysis.reporting import format_table
from repro.scenario import (
    ScenarioSpec,
    SchedulerChoice,
    VmSpec,
    WorkloadSpec,
    materialize,
)
from repro.workloads.profiles import application_workload

from .common import (
    PAPER_LLC_CAP,
    PAPER_SMALL_LLC_CAP,
    measured_ipc,
    solo_ipc_of,
)

DEFAULT_COUNTS = (1, 2, 4, 6, 8, 10, 13, 14, 15)


@dataclass
class Fig06Result:
    counts: List[int]
    normalized_perf: List[float] = field(default_factory=list)


def run(
    counts: Sequence[int] = DEFAULT_COUNTS,
    disruptor_app: str = "lbm",
    warmup_ticks: int = 30,
    measure_ticks: int = 150,
) -> Fig06Result:
    solo = solo_ipc_of(
        application_workload("gcc"),
        warmup_ticks=warmup_ticks,
        measure_ticks=measure_ticks,
    )
    result = Fig06Result(counts=list(counts))
    for count in counts:
        # Disturbers fill cores round-robin from core 1 (vsen1 keeps
        # core 0 but shares it once more than three disturbers are
        # colocated, as on the real 4-core socket) — exactly the
        # count-expansion rule of VmSpec.
        spec = ScenarioSpec(
            name=f"fig06-x{count}",
            scheduler=SchedulerChoice(kind="ks4xen"),
            vms=(
                VmSpec(
                    name="vsen1",
                    workload=WorkloadSpec(app="gcc"),
                    llc_cap=PAPER_LLC_CAP,
                    pinned_cores=(0,),
                ),
                VmSpec(
                    name="vdis1" if count > 1 else "vdis1-0",
                    workload=WorkloadSpec(app=disruptor_app),
                    count=count,
                    llc_cap=PAPER_SMALL_LLC_CAP,
                    pinned_cores=(1,),
                ),
            ),
        )
        built = materialize(spec)
        ipc = measured_ipc(
            built.system, built.vm("vsen1"), warmup_ticks, measure_ticks
        )
        result.normalized_perf.append(normalized_performance(solo, ipc))
    return result


def format_report(result: Fig06Result) -> str:
    rows = [
        [count, perf]
        for count, perf in zip(result.counts, result.normalized_perf)
    ]
    return format_table(
        ["# colocated vdis1", "normalized vsen1 perf"],
        rows,
        title="Fig 6: KS4Xen scalability (vsen1 @250k, each vdis1 @50k)",
    )
