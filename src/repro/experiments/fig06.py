"""Fig 6 — KS4Xen scalability.

Runs vsen1 (gcc, booked 250k) while varying the number of colocated
disruptive vCPUs (vdis1 = lbm instances, each booked 50k) from 1 to 15 —
up to 16 vCPUs on the 4-core socket, the consolidation ratio of [10].

Expected shape (paper): vsen1's normalised performance stays ~1.0
regardless of the number of disturbers, because every disturber is held
to its (small) pollution permit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.metrics import normalized_performance
from repro.analysis.reporting import format_table
from repro.core.ks4xen import KS4Xen
from repro.hypervisor.vm import VmConfig
from repro.workloads.profiles import application_workload

from .common import (
    PAPER_LLC_CAP,
    PAPER_SMALL_LLC_CAP,
    build_system,
    measured_ipc,
    solo_ipc_of,
)

DEFAULT_COUNTS = (1, 2, 4, 6, 8, 10, 13, 14, 15)


@dataclass
class Fig06Result:
    counts: List[int]
    normalized_perf: List[float] = field(default_factory=list)


def run(
    counts: Sequence[int] = DEFAULT_COUNTS,
    disruptor_app: str = "lbm",
    warmup_ticks: int = 30,
    measure_ticks: int = 150,
) -> Fig06Result:
    solo = solo_ipc_of(
        application_workload("gcc"),
        warmup_ticks=warmup_ticks,
        measure_ticks=measure_ticks,
    )
    result = Fig06Result(counts=list(counts))
    for count in counts:
        scheduler = KS4Xen()
        system = build_system(scheduler)
        sen = system.create_vm(
            VmConfig(
                name="vsen1",
                workload=application_workload("gcc"),
                llc_cap=PAPER_LLC_CAP,
                pinned_cores=[0],
            )
        )
        num_cores = system.machine.total_cores
        for i in range(count):
            # Disturbers fill cores round-robin (vsen1 keeps core 0 but
            # shares it once more than three disturbers are colocated, as
            # on the real 4-core socket).
            core = (1 + i) % num_cores
            system.create_vm(
                VmConfig(
                    name=f"vdis1-{i}",
                    workload=application_workload(disruptor_app),
                    llc_cap=PAPER_SMALL_LLC_CAP,
                    pinned_cores=[core],
                )
            )
        ipc = measured_ipc(system, sen, warmup_ticks, measure_ticks)
        result.normalized_perf.append(normalized_performance(solo, ipc))
    return result


def format_report(result: Fig06Result) -> str:
    rows = [
        [count, perf]
        for count, perf in zip(result.counts, result.normalized_perf)
    ]
    return format_table(
        ["# colocated vdis1", "normalized vsen1 perf"],
        rows,
        title="Fig 6: KS4Xen scalability (vsen1 @250k, each vdis1 @50k)",
    )
