"""Export experiment results as CSV figure data.

Each paper figure's reproduced series can be dumped to a CSV file (the
format gnuplot — which the original figures were clearly made with — or
any plotting tool consumes).  ``export_all`` regenerates the full data
directory in one call.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, List, Sequence

from . import fig01, fig02, fig03, fig04, fig05, fig06, fig08, fig09, fig11, fig12


def write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write one CSV file, creating parent directories as needed."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def export_fig01(result: "fig01.Fig01Result", path: str) -> None:
    rows = [
        [mode, rep, dis, result.of(rep, dis, mode)]
        for mode in fig01.MODES
        for rep in (1, 2, 3)
        for dis in (1, 2, 3)
    ]
    write_csv(path, ["execution", "rep_category", "dis_category",
                     "degradation_percent"], rows)


def export_fig02(result: "fig02.Fig02Result", path: str) -> None:
    rows = [
        [tick * 10] + [result.misses[s][i] for s in fig02.SITUATIONS]
        for i, tick in enumerate(result.ticks)
    ]
    write_csv(path, ["tick_ms"] + list(fig02.SITUATIONS), rows)


def export_fig03(result: "fig03.Fig03Result", path: str) -> None:
    names = sorted(result.degradation)
    rows = [
        [cap] + [result.degradation[name][i] for name in names]
        for i, cap in enumerate(result.caps)
    ]
    write_csv(path, ["vdis1_cap_percent"] + names, rows)


def export_fig04(result: "fig04.Fig04Result", path: str) -> None:
    rows = [
        [
            app,
            result.reports[app].real_aggressiveness,
            result.reports[app].solo.llcm,
            result.reports[app].solo.equation1,
        ]
        for app in result.comparison.real_order
    ]
    write_csv(path, ["app", "real_aggressiveness_percent", "llcm_mpki",
                     "equation1_miss_per_ms"], rows)


def export_fig05(result: "fig05.Fig05Result", path: str,
                 timeline_path: str = "") -> None:
    rows = [
        [
            vdis,
            result.normalized_perf[vdis],
            result.normalized_perf_xcs[vdis],
            result.punishments[vdis][0],
            result.punishments[vdis][1],
        ]
        for vdis in sorted(result.normalized_perf)
    ]
    write_csv(path, ["disruptor", "norm_perf_ks4xen", "norm_perf_xcs",
                     "punish_vsen1", "punish_vdis"], rows)
    if timeline_path:
        timeline_rows = [
            [
                tick,
                result.timeline.quota[tick],
                int(result.timeline.running_ks4xen[tick]),
                int(result.timeline.running_xcs[tick]),
            ]
            for tick in range(len(result.timeline.quota))
        ]
        write_csv(timeline_path,
                  ["tick", "quota", "running_ks4xen", "running_xcs"],
                  timeline_rows)


def export_fig06(result: "fig06.Fig06Result", path: str) -> None:
    write_csv(path, ["colocated_vdis1", "normalized_vsen1_perf"],
              zip(result.counts, result.normalized_perf))


def export_fig08(result: "fig08.Fig08Result", path: str) -> None:
    write_csv(path, ["configuration", "exec_time_sec"],
              sorted(result.exec_time.items()))


def export_fig09(result: "fig09.Fig09Result", path: str) -> None:
    rows = [
        [app, result.degradation[app], result.migrations[app]]
        for app in result.degradation
    ]
    write_csv(path, ["app", "degradation_percent", "migrations"], rows)


def export_fig11(result: "fig11.Fig11Result", path: str) -> None:
    rows = [
        [app, result.dedicated[app], result.shared[app]]
        for app in result.order_dedicated
    ]
    write_csv(path, ["app", "eq1_with_dedication", "eq1_without_dedication"],
              rows)


def export_fig12(result: "fig12.Fig12Result", path: str) -> None:
    rows = [
        [s, x, k]
        for s, x, k in zip(result.slices_ms, result.exec_time_xcs,
                           result.exec_time_ks4xen)
    ]
    write_csv(path, ["time_slice_ms", "xcs_exec_sec", "ks4xen_exec_sec"], rows)


def export_all(directory: str = "figure_data") -> List[str]:
    """Run every exportable experiment and write its CSV.

    Returns the list of files written.  This is the slow path (it runs
    the full evaluation); individual ``export_figNN`` functions accept
    precomputed results.
    """
    written: List[str] = []

    def out(name: str) -> str:
        path = os.path.join(directory, name)
        written.append(path)
        return path

    export_fig01(fig01.run(), out("fig01_contention.csv"))
    export_fig02(fig02.run(), out("fig02_llcm_timeline.csv"))
    export_fig03(fig03.run(), out("fig03_cpu_lever.csv"))
    export_fig04(fig04.run(), out("fig04_indicators.csv"))
    export_fig05(fig05.run(), out("fig05_effectiveness.csv"),
                 out("fig05_timeline.csv"))
    export_fig06(fig06.run(), out("fig06_scalability.csv"))
    export_fig08(fig08.run(), out("fig08_pisces.csv"))
    export_fig09(fig09.run(), out("fig09_migration.csv"))
    export_fig11(fig11.run(), out("fig11_dedication.csv"))
    export_fig12(fig12.run(), out("fig12_overhead.csv"))
    return written
