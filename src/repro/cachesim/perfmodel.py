"""Performance model coupling cache occupancy to execution speed.

Translates "this vCPU ran for N cycles while holding a fraction of its
working set in the LLC" into instructions retired and LLC misses suffered.
This is where the paper's measured latencies (L1 4 / L2 12 / LLC 45 /
memory 180 cycles) enter the model, and it is the source of every IPC and
miss-rate number in the reproduction.

The model:

* ``base_cpi`` covers execution plus all private-cache (L1/L2) activity.
* ``lapki`` LLC-reaching accesses per kilo-instruction.  An access hits
  with probability :func:`hit_probability` (a concave function of how much
  of the working set is resident, skewed by a locality exponent) and costs
  the LLC latency; otherwise it costs the (local or remote) memory latency.
* ``mlp`` divides the memory stall — overlapped misses hide latency.

Hence ``cpi = base_cpi + (lapki/1000) * avg_access_cycles / mlp`` and the
number of instructions that fit in a cycle budget follows directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.hardware.latency import LatencyModel


@dataclass(frozen=True)
class CacheBehavior:
    """Cache-relevant characterisation of an application.

    Attributes:
        wss_lines: working-set size in LLC lines (64 B each by default).
        lapki: LLC-reaching accesses per kilo-instruction.
        base_cpi: cycles per instruction excluding LLC/memory stalls.
        locality_theta: exponent of the hit-probability curve.  1.0 means
            uniform reuse over the working set; values < 1 mean a hot
            subset keeps hitting even when little of the set is resident.
        stream_fraction: fraction of LLC accesses that can never hit
            (compulsory/streaming traffic); these always insert.
        mlp: memory-level parallelism factor (>= 1) dividing miss stalls.
        pollution_footprint_lines: optional bound on the LLC lines the
            application effectively occupies, when smaller than its
            working set.  Models how adaptive replacement policies on
            modern LLCs confine pure streaming traffic: scanned-through
            lines are dead on arrival and get recycled within a limited
            region instead of flushing co-runners.  None means the
            working-set size bounds occupancy (the default).
    """

    wss_lines: float
    lapki: float
    base_cpi: float = 0.8
    locality_theta: float = 1.0
    stream_fraction: float = 0.0
    mlp: float = 1.0
    pollution_footprint_lines: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wss_lines < 0:
            raise ValueError(f"wss_lines must be >= 0, got {self.wss_lines}")
        if self.lapki < 0:
            raise ValueError(f"lapki must be >= 0, got {self.lapki}")
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be > 0, got {self.base_cpi}")
        if not 0 < self.locality_theta <= 4.0:
            raise ValueError(
                f"locality_theta must be in (0, 4], got {self.locality_theta}"
            )
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ValueError(
                f"stream_fraction must be in [0,1], got {self.stream_fraction}"
            )
        if self.mlp < 1.0:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")
        if (
            self.pollution_footprint_lines is not None
            and self.pollution_footprint_lines <= 0
        ):
            raise ValueError(
                "pollution_footprint_lines must be positive or None, got "
                f"{self.pollution_footprint_lines}"
            )

    @property
    def footprint_cap_lines(self) -> float:
        """Bound on LLC occupancy: the pollution footprint if set, else
        the working-set size."""
        if self.pollution_footprint_lines is not None:
            return min(self.pollution_footprint_lines, self.wss_lines)
        return self.wss_lines


class StepResult(NamedTuple):
    """Outcome of executing one vCPU for a cycle budget.

    A NamedTuple rather than a dataclass: one is constructed per core per
    sub-step, and tuple construction is measurably cheaper there.
    """

    cycles: int
    instructions: float
    llc_accesses: float
    llc_misses: float
    cpi: float

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the step."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


def hit_probability(behavior: CacheBehavior, occupancy_lines: float) -> float:
    """Probability that an LLC-reaching access hits, given residency.

    ``resident = occupancy / wss`` is the fraction of the working set in
    the cache; the reusable (non-streaming) accesses hit with probability
    ``resident ** theta``.  ``theta < 1`` models locality: the resident
    lines tend to be the hot ones, so hit probability rises quickly.
    """
    if behavior.wss_lines <= 0 or behavior.lapki == 0:
        return 1.0
    resident = min(1.0, max(0.0, occupancy_lines / behavior.wss_lines))
    reuse_hit = resident ** behavior.locality_theta
    return (1.0 - behavior.stream_fraction) * reuse_hit


def cycles_per_instruction(
    behavior: CacheBehavior,
    hit_prob: float,
    latency: LatencyModel,
    remote_memory: bool = False,
) -> float:
    """Effective CPI for a given LLC hit probability."""
    access_cost = (
        hit_prob * latency.llc_cycles
        + (1.0 - hit_prob) * latency.memory_cycles_for(remote_memory)
    )
    return behavior.base_cpi + (behavior.lapki / 1000.0) * access_cost / behavior.mlp


def solo_ipc(
    behavior: CacheBehavior,
    latency: LatencyModel,
    warm: bool = True,
) -> float:
    """Steady-state IPC of the application running alone.

    ``warm=True`` assumes the working set (up to LLC capacity) is already
    loaded — the state an application reaches after its first time slice.
    Callers that want cold-start behaviour pass ``warm=False``.
    """
    occupancy = behavior.wss_lines if warm else 0.0
    hit = hit_probability(behavior, occupancy)
    return 1.0 / cycles_per_instruction(behavior, hit, latency)


def execute_step(
    behavior: CacheBehavior,
    occupancy_lines: float,
    cycles: int,
    latency: LatencyModel,
    remote_memory: bool = False,
) -> StepResult:
    """Run the application for ``cycles`` with frozen occupancy.

    Returns the instructions retired, LLC accesses and misses produced in
    the step.  The caller (the machine simulator) is responsible for
    feeding the misses back into the shared
    :class:`~repro.cachesim.occupancy.LlcOccupancyDomain` and updating the
    occupancy used for the *next* step — that feedback loop at sub-tick
    granularity is what creates the contention dynamics.

    This function is the *reference semantics* for the step arithmetic.
    The batched tick engine (``repro.hypervisor.batch``) re-implements
    the same chain over slot locals (``BatchTickEngine._step_floats`` and
    its numpy kernel) and is pinned bit-identical to it by property
    tests and the experiment goldens; any change to an expression here
    must be mirrored there (and vice versa), keeping the evaluation
    order of every float operation intact.
    """
    if cycles < 0:
        raise ValueError(f"cycles must be >= 0, got {cycles}")
    # hit_probability and cycles_per_instruction, inlined: this runs once
    # per core per sub-step and the two call frames are measurable there.
    # The arithmetic must stay expression-for-expression identical to the
    # standalone helpers (results are pinned by experiment goldens).
    if behavior.wss_lines <= 0 or behavior.lapki == 0:
        hit = 1.0
    else:
        resident = min(1.0, max(0.0, occupancy_lines / behavior.wss_lines))
        reuse_hit = resident ** behavior.locality_theta
        hit = (1.0 - behavior.stream_fraction) * reuse_hit
    access_cost = (
        hit * latency.llc_cycles
        + (1.0 - hit) * latency.memory_cycles_for(remote_memory)
    )
    cpi = behavior.base_cpi + (behavior.lapki / 1000.0) * access_cost / behavior.mlp
    instructions = cycles / cpi
    llc_accesses = instructions * behavior.lapki / 1000.0
    llc_misses = llc_accesses * (1.0 - hit)
    return StepResult(
        cycles=cycles,
        instructions=instructions,
        llc_accesses=llc_accesses,
        llc_misses=llc_misses,
        cpi=cpi,
    )
