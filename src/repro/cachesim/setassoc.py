"""Faithful set-associative cache simulator.

Simulates a cache at the granularity of individual line addresses, with a
pluggable replacement policy.  This is the substrate behind the
McSimA+-style replay service (:mod:`repro.mcsim`) and the micro-benchmark
validation experiments; the full-machine simulation uses the much cheaper
occupancy model (:mod:`repro.cachesim.occupancy`) instead.

Addresses are byte addresses; the cache maps them to ``(set, tag)`` using
the line size and number of sets from its :class:`~repro.hardware.specs.
CacheSpec`.  Every access is tagged with an *owner* id (a vCPU) so that
per-VM attribution — Kyoto's central measurement problem — can be studied
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hardware.specs import CacheSpec

from .replacement import DipPolicy, LruPolicy, ReplacementPolicy, SetState
from .stats import CacheStats

#: Owner id used for lines whose owner is unknown/irrelevant.
NO_OWNER = -1


@dataclass
class CacheLine:
    """One cache line: its tag and the owner that brought it in."""

    tag: int
    owner: int


class AccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "evicted_tag", "evicted_owner", "set_index")

    def __init__(
        self,
        hit: bool,
        set_index: int,
        evicted_tag: Optional[int] = None,
        evicted_owner: int = NO_OWNER,
    ) -> None:
        self.hit = hit
        self.set_index = set_index
        self.evicted_tag = evicted_tag
        self.evicted_owner = evicted_owner


class SetAssociativeCache:
    """A single-level set-associative cache with owner attribution."""

    def __init__(
        self,
        spec: CacheSpec,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.spec = spec
        self.policy = policy if policy is not None else LruPolicy()
        self.num_sets = spec.num_sets
        self.assoc = spec.associativity
        self.line_bytes = spec.line_bytes
        # ways[s][w] is the CacheLine in way w of set s, or None.
        self._ways: List[List[Optional[CacheLine]]] = [
            [None] * self.assoc for _ in range(self.num_sets)
        ]
        self._states: List[SetState] = [
            self.policy.make_set_state(self.assoc) for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        if isinstance(self.policy, DipPolicy):
            self.policy.assign_set_roles(self.num_sets)

    # -- address mapping ---------------------------------------------------

    def index_of(self, address: int) -> Tuple[int, int]:
        """Map a byte address to ``(set_index, tag)``."""
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    # -- lookup / access ---------------------------------------------------

    def probe(self, address: int) -> bool:
        """Check residency without touching stats or recency state."""
        set_index, tag = self.index_of(address)
        return any(
            line is not None and line.tag == tag
            for line in self._ways[set_index]
        )

    def access(self, address: int, owner: int = NO_OWNER) -> AccessResult:
        """Perform one access; fill on miss; return hit/eviction info."""
        set_index, tag = self.index_of(address)
        ways = self._ways[set_index]
        state = self._states[set_index]

        for way, line in enumerate(ways):
            if line is not None and line.tag == tag:
                self._policy_on_hit(state, way, set_index)
                self.stats.record_access(owner, hit=True)
                return AccessResult(hit=True, set_index=set_index)

        # Miss: find a free way or evict.
        self.stats.record_access(owner, hit=False)
        self._policy_record_miss(set_index)
        evicted_tag: Optional[int] = None
        evicted_owner = NO_OWNER
        fill_way = next((w for w, line in enumerate(ways) if line is None), None)
        if fill_way is None:
            fill_way = self._policy_victim(state, set_index)
            victim = ways[fill_way]
            assert victim is not None
            evicted_tag = victim.tag
            evicted_owner = victim.owner
            state.recency.remove(fill_way)
            self.stats.record_eviction(victim_owner=victim.owner, cause_owner=owner)
        ways[fill_way] = CacheLine(tag=tag, owner=owner)
        self._policy_on_fill(state, fill_way, set_index)
        return AccessResult(
            hit=False,
            set_index=set_index,
            evicted_tag=evicted_tag,
            evicted_owner=evicted_owner,
        )

    # -- owner queries -----------------------------------------------------

    def occupancy_of(self, owner: int) -> int:
        """Number of lines currently owned by ``owner``."""
        return sum(
            1
            for ways in self._ways
            for line in ways
            if line is not None and line.owner == owner
        )

    def occupancy_by_owner(self) -> Dict[int, int]:
        """Mapping owner -> resident line count."""
        counts: Dict[int, int] = {}
        for ways in self._ways:
            for line in ways:
                if line is not None:
                    counts[line.owner] = counts.get(line.owner, 0) + 1
        return counts

    def resident_lines(self) -> int:
        """Total number of valid lines."""
        return sum(
            1 for ways in self._ways for line in ways if line is not None
        )

    def flush(self) -> None:
        """Invalidate every line (stats are preserved)."""
        self._ways = [[None] * self.assoc for _ in range(self.num_sets)]
        self._states = [
            self.policy.make_set_state(self.assoc) for _ in range(self.num_sets)
        ]

    def flush_owner(self, owner: int) -> int:
        """Invalidate all lines of one owner; returns how many were dropped."""
        dropped = 0
        for set_index, ways in enumerate(self._ways):
            state = self._states[set_index]
            for way, line in enumerate(ways):
                if line is not None and line.owner == owner:
                    ways[way] = None
                    if way in state.recency:
                        state.recency.remove(way)
                    dropped += 1
        return dropped

    # -- policy dispatch (DIP needs the set index) --------------------------

    def _policy_on_hit(self, state: SetState, way: int, set_index: int) -> None:
        if isinstance(self.policy, DipPolicy):
            self.policy.on_hit_set(state, way, set_index)
        else:
            self.policy.on_hit(state, way)

    def _policy_on_fill(self, state: SetState, way: int, set_index: int) -> None:
        if isinstance(self.policy, DipPolicy):
            self.policy.on_fill_set(state, way, set_index)
        else:
            self.policy.on_fill(state, way)

    def _policy_victim(self, state: SetState, set_index: int) -> int:
        if isinstance(self.policy, DipPolicy):
            return self.policy.victim_set(state, self.assoc, set_index)
        return self.policy.victim(state, self.assoc)

    def _policy_record_miss(self, set_index: int) -> None:
        if isinstance(self.policy, DipPolicy):
            self.policy.record_miss(set_index)
