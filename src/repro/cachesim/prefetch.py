"""Hardware prefetcher models.

The analytical performance model folds prefetching into the ``mlp``
parameter (overlapped misses).  The faithful trace-replay substrate can
model it structurally instead: a prefetcher watches the miss stream and
fills lines ahead of the demand accesses, converting would-be misses into
hits.  Two classic designs are provided:

* :class:`NextLinePrefetcher` — on a miss to line *n*, fetch *n+1..n+d*.
* :class:`StridePrefetcher` — per-PC-less stride detection over the miss
  address stream: after seeing two misses with the same delta, fetch the
  next ``degree`` lines along that stride.

Prefetched fills are tagged with the demand owner, so attribution (and
pollution accounting — prefetch-induced evictions are pollution too!)
stays correct.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from .setassoc import NO_OWNER, SetAssociativeCache


@dataclass
class PrefetchStats:
    """Effectiveness counters of one prefetcher."""

    issued: int = 0
    useful: int = 0  # prefetched lines later hit by a demand access

    @property
    def accuracy(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class Prefetcher(ABC):
    """Observes demand accesses to a cache and issues prefetch fills."""

    def __init__(self, cache: SetAssociativeCache, degree: int = 2) -> None:
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._outstanding: set = set()

    def on_demand_access(self, address: int, hit: bool, owner: int = NO_OWNER) -> None:
        """Feed one demand access; may trigger prefetch fills."""
        line = address // self.cache.line_bytes
        if hit and line in self._outstanding:
            self.stats.useful += 1
            self._outstanding.discard(line)
        for target in self._targets(line, hit):
            target_address = target * self.cache.line_bytes
            if not self.cache.probe(target_address):
                self.cache.access(target_address, owner)
                self.stats.issued += 1
                self._outstanding.add(target)

    @abstractmethod
    def _targets(self, line: int, hit: bool) -> List[int]:
        """Lines to prefetch in response to a demand access."""


class NextLinePrefetcher(Prefetcher):
    """Sequential prefetch: fetch the next ``degree`` lines on a miss."""

    name = "next-line"

    def _targets(self, line: int, hit: bool) -> List[int]:
        if hit:
            return []
        return [line + i for i in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Stride-detecting prefetch trained on the demand-access stream.

    Real stride engines train on every access (training only on misses
    breaks as soon as prefetching starts working: miss-to-miss deltas
    grow to multiples of the stride).
    """

    name = "stride"

    def __init__(self, cache: SetAssociativeCache, degree: int = 2) -> None:
        super().__init__(cache, degree)
        self._last_line: Optional[int] = None
        self._stride: Optional[int] = None
        self._confidence = 0

    def _targets(self, line: int, hit: bool) -> List[int]:
        targets: List[int] = []
        if self._last_line is not None:
            delta = line - self._last_line
            if delta != 0:
                if delta == self._stride:
                    self._confidence = min(self._confidence + 1, 4)
                else:
                    self._stride = delta
                    self._confidence = 1
            if self._confidence >= 2 and self._stride:
                targets = [
                    line + self._stride * i
                    for i in range(1, self.degree + 1)
                ]
        self._last_line = line
        return targets


class PrefetchingCache:
    """A cache front-end pairing demand accesses with a prefetcher.

    Drop-in convenience for the replay paths: ``access`` behaves like the
    underlying cache's but drives the prefetcher after each demand.
    """

    def __init__(self, cache: SetAssociativeCache, prefetcher: Prefetcher) -> None:
        if prefetcher.cache is not cache:
            raise ValueError("prefetcher must be bound to the same cache")
        self.cache = cache
        self.prefetcher = prefetcher

    def access(self, address: int, owner: int = NO_OWNER):
        result = self.cache.access(address, owner)
        self.prefetcher.on_demand_access(address, result.hit, owner)
        return result
