"""Multi-level cache hierarchy.

Chains private L1/L2 caches with the (possibly shared) LLC and accounts
which level services each access, translating that into access cycles with
the machine's :class:`~repro.hardware.latency.LatencyModel`.  Used by the
trace-replay path (mcsim) and by hierarchy-level validation tests; the
machine-scale contention simulation uses the occupancy model instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.hardware.latency import LatencyModel
from repro.hardware.specs import SocketSpec

from .replacement import ReplacementPolicy, make_policy
from .setassoc import NO_OWNER, SetAssociativeCache


class ServiceLevel(Enum):
    """Which level of the hierarchy serviced an access."""

    L1 = "L1"
    L2 = "L2"
    LLC = "LLC"
    MEMORY = "MEMORY"


@dataclass
class HierarchyAccess:
    """Outcome of one access through the full hierarchy."""

    level: ServiceLevel
    cycles: int
    llc_miss: bool


class CacheHierarchy:
    """Private L1D + L2 in front of a shared LLC.

    Several hierarchies (one per core) may share the same ``llc`` object,
    which is exactly how LLC contention arises.
    """

    def __init__(
        self,
        socket_spec: SocketSpec,
        latency: LatencyModel,
        llc: Optional[SetAssociativeCache] = None,
        llc_policy: str = "lru",
    ) -> None:
        self.latency = latency
        self.l1 = SetAssociativeCache(socket_spec.l1d)
        self.l2 = SetAssociativeCache(socket_spec.l2)
        self.llc = (
            llc
            if llc is not None
            else SetAssociativeCache(socket_spec.llc, make_policy(llc_policy))
        )
        self.level_counts: Dict[ServiceLevel, int] = {
            level: 0 for level in ServiceLevel
        }

    def access(
        self, address: int, owner: int = NO_OWNER, remote_memory: bool = False
    ) -> HierarchyAccess:
        """Send one load through L1 → L2 → LLC → memory.

        All levels are filled on the way back (inclusive hierarchy).
        """
        if self.l1.access(address, owner).hit:
            level = ServiceLevel.L1
            cycles = self.latency.l1_cycles
            llc_miss = False
        elif self.l2.access(address, owner).hit:
            level = ServiceLevel.L2
            cycles = self.latency.l2_cycles
            llc_miss = False
        elif self.llc.access(address, owner).hit:
            level = ServiceLevel.LLC
            cycles = self.latency.llc_cycles
            llc_miss = False
        else:
            level = ServiceLevel.MEMORY
            cycles = self.latency.memory_cycles_for(remote_memory)
            llc_miss = True
        self.level_counts[level] += 1
        return HierarchyAccess(level=level, cycles=cycles, llc_miss=llc_miss)

    @property
    def llc_misses(self) -> int:
        """Number of accesses that had to go to memory."""
        return self.level_counts[ServiceLevel.MEMORY]

    def reset_counts(self) -> None:
        """Zero the per-level service counters (cache contents preserved)."""
        self.level_counts = {level: 0 for level in ServiceLevel}
