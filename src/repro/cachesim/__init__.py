"""Cache simulation: faithful set-associative caches and the analytical
shared-LLC occupancy/contention model."""

from .hierarchy import CacheHierarchy, HierarchyAccess, ServiceLevel
from .occupancy import InsertionOutcome, LlcOccupancyDomain
from .prefetch import (
    NextLinePrefetcher,
    PrefetchStats,
    Prefetcher,
    PrefetchingCache,
    StridePrefetcher,
)
from .perfmodel import (
    CacheBehavior,
    StepResult,
    cycles_per_instruction,
    execute_step,
    hit_probability,
    solo_ipc,
)
from .replacement import (
    BipPolicy,
    DipPolicy,
    LruPolicy,
    ProtectingDistancePolicy,
    RandomPolicy,
    ReplacementPolicy,
    SetState,
    make_policy,
)
from .setassoc import AccessResult, CacheLine, NO_OWNER, SetAssociativeCache
from .stats import AccessStats, CacheStats

__all__ = [
    "AccessResult",
    "AccessStats",
    "BipPolicy",
    "CacheBehavior",
    "CacheHierarchy",
    "CacheLine",
    "CacheStats",
    "DipPolicy",
    "HierarchyAccess",
    "InsertionOutcome",
    "LlcOccupancyDomain",
    "LruPolicy",
    "NO_OWNER",
    "NextLinePrefetcher",
    "PrefetchStats",
    "Prefetcher",
    "PrefetchingCache",
    "StridePrefetcher",
    "ProtectingDistancePolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "ServiceLevel",
    "SetAssociativeCache",
    "SetState",
    "StepResult",
    "cycles_per_instruction",
    "execute_step",
    "hit_probability",
    "make_policy",
    "solo_ipc",
]
