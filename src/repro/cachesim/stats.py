"""Cache statistics containers.

Counters are kept both globally per cache and per *owner* (the vCPU or VM
id tagged on each access), because the whole point of Kyoto's monitoring
problem is attributing shared-LLC activity to individual VMs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class AccessStats:
    """Hit/miss/eviction counters for one owner (or the whole cache)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions_suffered: int = 0
    evictions_caused: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses (0.0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions_suffered = 0
        self.evictions_caused = 0


class CacheStats:
    """Global plus per-owner statistics of one cache."""

    def __init__(self) -> None:
        self.total = AccessStats()
        self.by_owner: Dict[int, AccessStats] = defaultdict(AccessStats)

    def record_access(self, owner: int, hit: bool) -> None:
        self.total.accesses += 1
        self.by_owner[owner].accesses += 1
        if hit:
            self.total.hits += 1
            self.by_owner[owner].hits += 1
        else:
            self.total.misses += 1
            self.by_owner[owner].misses += 1

    def record_eviction(self, victim_owner: int, cause_owner: int) -> None:
        self.total.evictions_suffered += 1
        self.by_owner[victim_owner].evictions_suffered += 1
        self.by_owner[cause_owner].evictions_caused += 1

    def owner(self, owner_id: int) -> AccessStats:
        """Stats for one owner (created empty if never seen)."""
        return self.by_owner[owner_id]

    def reset(self) -> None:
        self.total.reset()
        for stats in self.by_owner.values():
            stats.reset()
