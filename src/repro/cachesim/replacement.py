"""Cache replacement policies.

The paper's related-work section discusses LRU, bimodal insertion (BIP),
dynamic insertion (DIP, set-dueling between LRU and BIP) and protecting
distances (PDP).  We implement all of them behind one interface so that
the set-associative simulator (:mod:`repro.cachesim.setassoc`) can be used
both as the McSimA+-style replay substrate and for ablation studies of how
the choice of policy changes contention.

A policy manages *per-set* recency state.  Way indices are positions in
the set's way array; the cache calls :meth:`on_hit`, :meth:`on_fill` and
:meth:`victim`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional

from repro.simulation.rng import seeded_stream


class SetState:
    """Replacement metadata for one cache set.

    ``recency`` lists way indices from MRU (front) to LRU (back); only the
    ways that currently hold a valid line appear in it.  ``extra`` is a
    per-way scratch list for policies that need more than recency (e.g.
    protecting distances).
    """

    __slots__ = ("recency", "extra")

    def __init__(self, associativity: int) -> None:
        self.recency: List[int] = []
        self.extra: List[int] = [0] * associativity


class ReplacementPolicy(ABC):
    """Interface implemented by every replacement policy."""

    name: str = "abstract"

    @abstractmethod
    def on_hit(self, state: SetState, way: int) -> None:
        """Update metadata after a hit on ``way``."""

    @abstractmethod
    def on_fill(self, state: SetState, way: int) -> None:
        """Update metadata after filling ``way`` with a new line."""

    @abstractmethod
    def victim(self, state: SetState, associativity: int) -> int:
        """Pick the way to evict from a full set."""

    def make_set_state(self, associativity: int) -> SetState:
        """Create fresh per-set metadata."""
        return SetState(associativity)


class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement."""

    name = "lru"

    def on_hit(self, state: SetState, way: int) -> None:
        state.recency.remove(way)
        state.recency.insert(0, way)

    def on_fill(self, state: SetState, way: int) -> None:
        if way in state.recency:
            state.recency.remove(way)
        state.recency.insert(0, way)

    def victim(self, state: SetState, associativity: int) -> int:
        return state.recency[-1]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded, reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0, rng: Optional[random.Random] = None) -> None:
        # Nameless stream is deliberate: the golden sha256 pins derive from
        # the seed-global stream; naming it now would reseed every golden.
        self._rng = rng if rng is not None else seeded_stream(seed)  # kyotolint: disable=S002

    def on_hit(self, state: SetState, way: int) -> None:
        # Random replacement keeps no recency order beyond occupancy.
        pass

    def on_fill(self, state: SetState, way: int) -> None:
        if way not in state.recency:
            state.recency.append(way)

    def victim(self, state: SetState, associativity: int) -> int:
        return self._rng.choice(state.recency)


class BipPolicy(ReplacementPolicy):
    """Bimodal insertion policy (Qureshi et al., ISCA 2007).

    Evicts LRU like plain LRU, but inserts new lines at the *LRU* position
    except with small probability ``epsilon``, which protects the cache
    from thrashing/streaming workloads: a line only migrates toward MRU if
    it is actually reused.
    """

    name = "bip"

    def __init__(
        self,
        epsilon: float = 1 / 32,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0,1], got {epsilon}")
        self.epsilon = epsilon
        # Nameless stream is deliberate: golden-pinned, see RandomPolicy.
        self._rng = rng if rng is not None else seeded_stream(seed)  # kyotolint: disable=S002

    def on_hit(self, state: SetState, way: int) -> None:
        state.recency.remove(way)
        state.recency.insert(0, way)

    def on_fill(self, state: SetState, way: int) -> None:
        if way in state.recency:
            state.recency.remove(way)
        if self._rng.random() < self.epsilon:
            state.recency.insert(0, way)  # rare MRU insertion
        else:
            state.recency.append(way)  # common LRU insertion

    def victim(self, state: SetState, associativity: int) -> int:
        return state.recency[-1]


class DipPolicy(ReplacementPolicy):
    """Dynamic insertion policy: set-dueling between LRU and BIP.

    A handful of *leader sets* always use LRU, another handful always use
    BIP; a saturating counter (PSEL) tracks which leader group misses less
    and all *follower sets* adopt the winner.  This is the mechanism of
    refs [17, 19] in the paper.

    The cache simulator calls :meth:`assign_set_roles` once it knows the
    number of sets, then routes each set's operations here with the set
    index recorded in the state.
    """

    name = "dip"

    LEADER_LRU = 1
    LEADER_BIP = 2
    FOLLOWER = 0

    def __init__(
        self,
        epsilon: float = 1 / 32,
        psel_bits: int = 10,
        leaders_per_kind: int = 32,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._lru = LruPolicy()
        self._bip = BipPolicy(epsilon=epsilon, seed=seed, rng=rng)
        self._psel_max = (1 << psel_bits) - 1
        self._psel = self._psel_max // 2
        self._leaders_per_kind = leaders_per_kind
        self._roles: List[int] = []

    def assign_set_roles(self, num_sets: int) -> None:
        """Statically pick leader sets (evenly spread) among ``num_sets``."""
        self._roles = [self.FOLLOWER] * num_sets
        if num_sets < 2 * self._leaders_per_kind:
            leaders = max(1, num_sets // 4)
        else:
            leaders = self._leaders_per_kind
        stride = max(1, num_sets // (2 * leaders))
        for i in range(leaders):
            lru_set = (2 * i) * stride % num_sets
            bip_set = (2 * i + 1) * stride % num_sets
            self._roles[lru_set] = self.LEADER_LRU
            self._roles[bip_set] = self.LEADER_BIP

    def _active_for(self, set_index: int) -> ReplacementPolicy:
        role = self._roles[set_index] if self._roles else self.FOLLOWER
        if role == self.LEADER_LRU:
            return self._lru
        if role == self.LEADER_BIP:
            return self._bip
        # Followers use the currently winning policy: PSEL above midpoint
        # means LRU leaders missed more, so BIP wins.
        midpoint = (self._psel_max + 1) // 2
        return self._bip if self._psel >= midpoint else self._lru

    def record_miss(self, set_index: int) -> None:
        """Called by the cache on every miss, drives the PSEL counter."""
        if not self._roles:
            return
        role = self._roles[set_index]
        if role == self.LEADER_LRU:
            self._psel = min(self._psel_max, self._psel + 1)
        elif role == self.LEADER_BIP:
            self._psel = max(0, self._psel - 1)

    # The cache stores the set index in state.extra[0] slot via subclass
    # hooks; simpler: DIP exposes per-set wrappers below.

    def on_hit_set(self, state: SetState, way: int, set_index: int) -> None:
        self._active_for(set_index).on_hit(state, way)

    def on_fill_set(self, state: SetState, way: int, set_index: int) -> None:
        self._active_for(set_index).on_fill(state, way)

    def victim_set(self, state: SetState, associativity: int, set_index: int) -> int:
        return self._active_for(set_index).victim(state, associativity)

    # ReplacementPolicy interface (used when no set index is available).
    def on_hit(self, state: SetState, way: int) -> None:
        self.on_hit_set(state, way, 0)

    def on_fill(self, state: SetState, way: int) -> None:
        self.on_fill_set(state, way, 0)

    def victim(self, state: SetState, associativity: int) -> int:
        return self.victim_set(state, associativity, 0)


class ProtectingDistancePolicy(ReplacementPolicy):
    """Simplified protecting-distance policy (PDP, Duong et al. MICRO'12).

    Each line gets a *protecting distance* counter on fill/hit; the counter
    decays on every access to the set.  Lines whose counter reached zero
    are preferred victims; protected lines are only evicted when no
    unprotected line exists.
    """

    name = "pdp"

    def __init__(self, protecting_distance: int = 16) -> None:
        if protecting_distance <= 0:
            raise ValueError(
                f"protecting distance must be positive, got {protecting_distance}"
            )
        self.protecting_distance = protecting_distance

    def _decay(self, state: SetState) -> None:
        for way in state.recency:
            if state.extra[way] > 0:
                state.extra[way] -= 1

    def on_hit(self, state: SetState, way: int) -> None:
        self._decay(state)
        state.extra[way] = self.protecting_distance
        state.recency.remove(way)
        state.recency.insert(0, way)

    def on_fill(self, state: SetState, way: int) -> None:
        self._decay(state)
        state.extra[way] = self.protecting_distance
        if way in state.recency:
            state.recency.remove(way)
        state.recency.insert(0, way)

    def victim(self, state: SetState, associativity: int) -> int:
        unprotected = [way for way in state.recency if state.extra[way] == 0]
        if unprotected:
            return unprotected[-1]
        return state.recency[-1]


_POLICY_FACTORIES = {
    "lru": LruPolicy,
    "random": RandomPolicy,
    "bip": BipPolicy,
    "dip": DipPolicy,
    "pdp": ProtectingDistancePolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Supported names: ``lru``, ``random``, ``bip``, ``dip``, ``pdp``.
    """
    try:
        factory = _POLICY_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy '{name}'; "
            f"choose from {sorted(_POLICY_FACTORIES)}"
        ) from None
    return factory(**kwargs)
