"""Analytical shared-LLC occupancy model.

Simulating a 10 MB LLC access-by-access for seconds of machine time is far
too slow in pure Python, and unnecessary: the contention phenomena the
paper measures (Figs 1-6, 8) are driven by *line ownership dynamics* —
who holds how much of the LLC, and how fast competitors erode it.  This
module models exactly that:

* Each owner (a vCPU) holds a fractional number of LLC lines.
* A miss inserts one line.  If the cache has free lines the insertion
  consumes one; otherwise one resident line is evicted, chosen
  proportionally to current per-owner occupancy — the mean-field behaviour
  of LRU/random replacement under well-mixed set indices.
* An owner's footprint is capped at its working-set size: once its whole
  working set is resident, further (streaming) misses churn its own lines
  and keep pressuring everyone else without net growth.

Descheduled owners keep their lines but lose them to running owners'
insertions, which reproduces the paper's Fig 2 zigzag: after each time
slice spent descheduled, a VM restarts with a cold(er) cache and pays a
burst of reload misses.

The model is deliberately deterministic (expected-value dynamics); the
stochastic fine structure is available from the faithful simulator in
:mod:`repro.cachesim.setassoc` when needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.lint.contracts import check as contract_check


@dataclass
class InsertionOutcome:
    """Bookkeeping for one batch of insertions.

    Attributes:
        inserted: number of lines the owner attempted to insert.
        from_free: insertions satisfied from free (invalid) lines.
        evicted_by_owner: lines evicted from each owner (inserter included).
    """

    inserted: float
    from_free: float
    evicted_by_owner: Dict[int, float]


class LlcOccupancyDomain:
    """Shared-LLC line-ownership state for one socket."""

    def __init__(self, total_lines: int) -> None:
        if total_lines <= 0:
            raise ValueError(f"total_lines must be positive, got {total_lines}")
        self.total_lines = float(total_lines)
        self._occupancy: Dict[int, float] = {}
        # Cache of sum(self._occupancy.values()), refreshed at the end of
        # every mutation.  The hot paths (relax, insert, the per-substep
        # free_lines/occupancy_of queries) would otherwise re-sum the dict
        # several times per call.  The cache is always refreshed by a full
        # re-sum — never updated incrementally — so its value is bit-exact
        # with what summing on demand would return (float addition is not
        # associative; an incremental running total would drift).
        self._used_lines = 0.0
        # No-op relax memo.  ``_state_version`` advances whenever the
        # occupancy map may have changed; ``_relax_memo`` records the
        # inputs of the last :meth:`relax` call that provably left every
        # occupancy value bitwise unchanged.  A repeat call with the same
        # inputs against the same state is then skipped outright — at the
        # fixed point of the relaxation (a steady periodic schedule) the
        # overwhelming majority of per-substep relax calls hit this memo.
        self._state_version = 0
        self._relax_memo: Optional[
            Tuple[int, Dict[int, float], Dict[int, float], Optional[frozenset]]
        ] = None

    # -- queries -------------------------------------------------------------

    @property
    def used_lines(self) -> float:
        """Total resident lines across all owners."""
        return self._used_lines

    def _refresh_used(self) -> float:
        self._used_lines = sum(self._occupancy.values())
        return self._used_lines

    @property
    def free_lines(self) -> float:
        """Lines not owned by anyone."""
        return max(0.0, self.total_lines - self.used_lines)

    def occupancy_of(self, owner: int) -> float:
        """Lines currently held by ``owner`` (0.0 if unknown)."""
        return self._occupancy.get(owner, 0.0)

    def share_of(self, owner: int) -> float:
        """Fraction of the whole LLC held by ``owner``."""
        return self.occupancy_of(owner) / self.total_lines

    def owners(self) -> Iterable[int]:
        """Owners with non-zero occupancy."""
        return [o for o, occ in self._occupancy.items() if occ > 0.0]

    def snapshot(self) -> Dict[int, float]:
        """Copy of the per-owner occupancy map."""
        return dict(self._occupancy)

    # -- mutations -----------------------------------------------------------

    def insert(
        self,
        owner: int,
        n_lines: float,
        footprint_cap: Optional[float] = None,
    ) -> InsertionOutcome:
        """Insert ``n_lines`` lines on behalf of ``owner``.

        ``footprint_cap`` bounds the owner's resident footprint (its
        working-set size in lines).  Insertions beyond the cap still evict
        other owners' lines (churn pressure) but do not grow the owner.
        """
        if n_lines < 0:
            raise ValueError(f"cannot insert a negative line count: {n_lines}")
        if n_lines == 0:
            return InsertionOutcome(0.0, 0.0, {})
        self._state_version += 1

        from_free = min(n_lines, self.free_lines)
        overflow = n_lines - from_free
        evicted: Dict[int, float] = {}

        if overflow > 0:
            used = self.used_lines
            if used > 0:
                # Evict proportionally to occupancy; eviction amount cannot
                # exceed what an owner actually holds.
                scale = min(1.0, overflow / used)
                for victim, occ in list(self._occupancy.items()):
                    loss = occ * scale
                    if loss > 0:
                        self._occupancy[victim] = occ - loss
                        evicted[victim] = evicted.get(victim, 0.0) + loss

        gained = from_free + sum(evicted.values())
        self._occupancy[owner] = self._occupancy.get(owner, 0.0) + gained

        if footprint_cap is not None and self._occupancy[owner] > footprint_cap:
            # Streaming churn: the owner replaced its own lines instead of
            # growing; excess becomes free space again.
            self._occupancy[owner] = footprint_cap

        self._prune()
        contract_check(
            self.used_lines <= self.total_lines * (1.0 + 1e-9),
            "occupancy-conservation",
            f"{self.used_lines} lines resident in a {self.total_lines}-line LLC",
        )
        return InsertionOutcome(
            inserted=n_lines, from_free=from_free, evicted_by_owner=evicted
        )

    def evict_owner(self, owner: int, n_lines: float) -> float:
        """Forcefully remove up to ``n_lines`` of ``owner``; returns removed."""
        if n_lines < 0:
            raise ValueError(f"cannot evict a negative line count: {n_lines}")
        occ = self._occupancy.get(owner, 0.0)
        removed = min(occ, n_lines)
        if removed > 0:
            self._state_version += 1
            self._occupancy[owner] = occ - removed
            self._prune()
        return removed

    def flush_owner(self, owner: int) -> float:
        """Drop every line of ``owner`` (e.g. after a socket migration)."""
        return self.evict_owner(owner, self.occupancy_of(owner))

    def reset(self) -> None:
        """Empty the cache entirely."""
        self._state_version += 1
        self._occupancy.clear()
        self._used_lines = 0.0

    def _prune(self, epsilon: float = 1e-9) -> None:
        """Drop sub-epsilon owners; refreshes the used-lines cache.

        Every mutation path ends in a ``_prune`` call, which is what keeps
        the cache coherent with the occupancy map.
        """
        for owner in [o for o, occ in self._occupancy.items() if occ <= epsilon]:
            del self._occupancy[owner]
        self._refresh_used()

    # -- continuous-time relaxation (the machine simulation's fast path) ------

    def relax(
        self,
        pressures: Mapping[int, float],
        footprint_caps: Mapping[int, float],
        active: Optional[Iterable[int]] = None,
    ) -> None:
        """Advance the occupancy state after a batch of insertions.

        ``pressures[owner]`` is the number of lines the owner inserted
        during the elapsed interval (its misses); ``footprint_caps[owner]``
        bounds its resident footprint (working-set size in lines);
        ``active`` lists the owners currently *executing* (defaults to the
        keys of ``pressures``).

        The naive per-batch exchange (:meth:`insert`) is numerically
        unstable once the batch size approaches the cache size — at
        realistic miss rates the whole LLC turns over in well under a
        millisecond, so a tick-level simulation would oscillate.  Instead
        the update mirrors the mean-field behaviour of LRU replacement:

        * **dead lines first** — lines of inactive (descheduled) owners
          are never re-touched, drift to the LRU end, and absorb eviction
          pressure before anyone else's; they are consumed linearly, which
          is what makes a VM restart cold after a time slice spent
          descheduled (the paper's Fig 2 zigzag);
        * **growth is insertion-bounded** — an owner gains at most as many
          lines as it actually inserted, so a cold working set reloads
          linearly (one lap of the pointer chain), not instantaneously;
        * **contention among active owners** relaxes toward a waterfilled
          equilibrium: shares proportional to insertion pressure, capped
          by footprints, with one cache-capacity's worth of insertions as
          the exponential time constant.
        """
        total_insertions = sum(pressures.values())
        if total_insertions < 0:
            raise ValueError(f"negative total insertion pressure: {pressures}")
        if total_insertions == 0:
            return
        memo = self._relax_memo
        if (
            memo is not None
            and memo[0] == self._state_version
            and memo[1] == pressures
            and memo[2] == footprint_caps
            and (
                memo[3] is None
                if active is None
                else memo[3] is not None and memo[3] == frozenset(active)
            )
        ):
            # Same inputs against the same state as the last provably
            # bitwise-no-op call: the relaxation is at its fixed point.
            return
        active_set = set(pressures) if active is None else set(active)
        changed = False

        # Phase 1: eviction pressure beyond free space consumes inactive
        # owners' (dead) lines first, proportionally among them.  (Two
        # passes over the same filter instead of building a dead-owner
        # dict: this runs per sub-step and the second pass is usually
        # skipped.)
        occupancy = self._occupancy
        overflow = max(0.0, total_insertions - self.free_lines)
        dead_total = 0.0
        for owner, occ in occupancy.items():
            if owner not in active_set and occ > 0.0:
                dead_total += occ
        from_dead = min(overflow, dead_total)
        if from_dead > 0:
            for owner, occ in occupancy.items():
                if owner not in active_set and occ > 0.0:
                    shrunk = occ - from_dead * occ / dead_total
                    if shrunk != occ:
                        occupancy[owner] = shrunk
                        changed = True

        # Phase 2: active owners move toward the waterfilled equilibrium
        # of the capacity not pinned down by surviving dead lines.
        surviving_dead = dead_total - from_dead
        capacity_active = max(1.0, self.total_lines - surviving_dead)
        equilibrium = waterfill_allocation(
            capacity_active, pressures, footprint_caps
        )
        survive = math.exp(-total_insertions / capacity_active)
        for owner in sorted(set(equilibrium) | (set(occupancy) & active_set)):
            current = occupancy.get(owner, 0.0)
            target = equilibrium.get(owner, 0.0)
            if target >= current:
                grow = min(target - current, pressures.get(owner, 0.0))
                updated = current + grow
            else:
                updated = target + (current - target) * survive
            # Skipping a bitwise-equal store is state-identical: an
            # existing key keeps its dict position either way, and an
            # absent key with updated == 0.0 would be pruned right after.
            if updated != current:
                occupancy[owner] = updated
                changed = True

        if not changed:
            # Every store this call would have made was bitwise equal to
            # the value already present, so pruning and the used-lines
            # refresh would change nothing either (no sub-epsilon entries
            # can have appeared).  Record the fixed point.
            self._relax_memo = (
                self._state_version,
                dict(pressures),
                dict(footprint_caps),
                None if active is None else frozenset(active),
            )
            return
        self._state_version += 1
        self._relax_memo = None

        # Conservation guard: insertion-bounded growth plus exponential
        # shrink can transiently oversubscribe; squeeze proportionally.
        used = self._refresh_used()
        if used > self.total_lines:
            scale = self.total_lines / used
            for owner in occupancy:
                occupancy[owner] *= scale
        self._prune()
        used = self._used_lines
        if used > self.total_lines * (1.0 + 1e-9):
            # Detail string built only on violation; this contract sits on
            # the per-substep fast path.
            contract_check(
                False,
                "occupancy-conservation",
                f"{used} lines resident in a {self.total_lines}-line LLC",
            )


def waterfill_allocation(
    capacity: float,
    pressures: Mapping[int, float],
    footprint_caps: Mapping[int, float],
) -> Dict[int, float]:
    """Steady-state cache allocation under proportional replacement.

    Each owner with positive insertion pressure receives a share of
    ``capacity`` proportional to its pressure, except that no owner can
    hold more than its footprint cap; capacity freed by saturated owners
    is redistributed among the rest (classic waterfilling).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    active = {
        owner: pressure
        for owner, pressure in pressures.items()
        if pressure > 0 and footprint_caps.get(owner, capacity) > 0
    }
    allocation: Dict[int, float] = {}
    remaining = capacity
    while active and remaining > 0:
        total_pressure = sum(active.values())
        any_saturated = False
        for owner, pressure in active.items():
            if (
                footprint_caps.get(owner, capacity)
                <= remaining * pressure / total_pressure
            ):
                any_saturated = True
                break
        if not any_saturated:
            for owner, pressure in active.items():
                allocation[owner] = remaining * pressure / total_pressure
            return allocation
        # A set (not a list) on purpose: ``remaining`` is debited in set
        # iteration order below, and float subtraction order is
        # observable — goldens pin this exact order.
        saturated = {
            owner
            for owner, pressure in active.items()
            if footprint_caps.get(owner, capacity)
            <= remaining * pressure / total_pressure
        }
        for owner in saturated:
            cap = footprint_caps.get(owner, capacity)
            allocation[owner] = cap
            remaining -= cap
            del active[owner]
    for owner in active:
        allocation.setdefault(owner, 0.0)
    return allocation
