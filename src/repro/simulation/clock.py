"""Simulated time.

All of the machine simulation runs in *simulated* time, decoupled from wall
clock.  Time is kept in integer **microseconds** so that tick arithmetic is
exact: Xen's scheduler tick is 10 ms and its time slice (accounting period)
is 30 ms, both of which are exact multiples of one microsecond.

Cycle math uses the socket frequency: at 2.8 GHz, one microsecond is 2800
cycles.  Conversions are provided here so that the rest of the code never
hand-rolls unit conversions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Number of microseconds in one millisecond.
USEC_PER_MSEC = 1_000
#: Number of microseconds in one second.
USEC_PER_SEC = 1_000_000

#: Xen scheduler tick length (10 ms), as in the paper's footnote 1.
XEN_TICK_USEC = 10 * USEC_PER_MSEC
#: Xen time slice / credit accounting period (30 ms = 3 ticks).
XEN_TIME_SLICE_USEC = 30 * USEC_PER_MSEC


def usec_to_msec(usec: int) -> float:
    """Convert microseconds to (possibly fractional) milliseconds."""
    return usec / USEC_PER_MSEC


def msec_to_usec(msec: float) -> int:
    """Convert milliseconds to integer microseconds (rounded)."""
    return int(round(msec * USEC_PER_MSEC))


def usec_to_cycles(usec: int, freq_khz: int) -> int:
    """Number of core cycles elapsed in ``usec`` at frequency ``freq_khz``.

    ``freq_khz`` is kilocycles per second, hence cycles = usec * freq_khz
    / 1000 exactly when freq_khz is a multiple of 1000 (it always is for
    the machines we model).
    """
    return usec * freq_khz // 1_000


def cycles_to_usec(cycles: int, freq_khz: int) -> float:
    """Wall-clock microseconds taken by ``cycles`` cycles at ``freq_khz``."""
    return cycles * 1_000 / freq_khz


@dataclass
class Clock:
    """Monotonic simulated clock, in integer microseconds.

    The clock only moves forward; :meth:`advance_to` raises if asked to go
    backwards, which catches event-ordering bugs early.
    """

    now_usec: int = 0
    _started: bool = field(default=False, repr=False)

    @property
    def now_msec(self) -> float:
        """Current time in milliseconds."""
        return usec_to_msec(self.now_usec)

    @property
    def now_sec(self) -> float:
        """Current time in seconds."""
        return self.now_usec / USEC_PER_SEC

    def advance(self, delta_usec: int) -> int:
        """Move the clock forward by ``delta_usec`` and return the new time."""
        if delta_usec < 0:
            raise ValueError(f"cannot advance clock by {delta_usec} usec")
        self.now_usec += delta_usec
        return self.now_usec

    def advance_to(self, when_usec: int) -> int:
        """Move the clock forward to the absolute time ``when_usec``."""
        if when_usec < self.now_usec:
            raise ValueError(
                f"clock cannot move backwards: now={self.now_usec}, "
                f"requested={when_usec}"
            )
        self.now_usec = when_usec
        return self.now_usec

    def reset(self) -> None:
        """Reset the clock to time zero (used between experiment runs)."""
        self.now_usec = 0
