"""Discrete-event queue.

A tiny, deterministic event queue used by the machine simulation.  Events
are ``(when_usec, priority, seq, callback)`` tuples kept in a binary heap.
The sequence number makes ordering stable for events scheduled at the same
instant with the same priority, which in turn makes whole simulations
reproducible run to run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

#: Default event priority; lower runs first among same-time events.
DEFAULT_PRIORITY = 10


@dataclass(frozen=True)
class Event:
    """A scheduled callback.

    Attributes:
        when_usec: absolute simulated time at which the event fires.
        priority: tie-breaker among events at the same time (lower first).
        seq: insertion sequence number (final tie-breaker, FIFO).
        name: human-readable label used in traces and error messages.
        callback: zero-argument callable invoked when the event fires.
    """

    when_usec: int
    priority: int
    seq: int
    name: str
    callback: Callable[[], None] = field(compare=False)

    def sort_key(self) -> tuple:
        return (self.when_usec, self.priority, self.seq)


class EventCancelled(Exception):
    """Raised internally when a cancelled event is popped."""


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Supports O(log n) schedule/pop and lazy cancellation.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._cancelled: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def schedule(
        self,
        when_usec: int,
        callback: Callable[[], None],
        *,
        name: str = "event",
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when_usec``."""
        if when_usec < 0:
            raise ValueError(f"cannot schedule event at negative time {when_usec}")
        event = Event(
            when_usec=when_usec,
            priority=priority,
            seq=next(self._seq),
            name=name,
            callback=callback,
        )
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event (no-op if already fired)."""
        self._cancelled.add(event.sort_key())

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][1].when_usec

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        __, event = heapq.heappop(self._heap)
        return event

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._cancelled.clear()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][0] in self._cancelled:
            key, __ = heapq.heappop(self._heap)
            self._cancelled.discard(key)
