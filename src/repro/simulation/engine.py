"""Discrete-event simulation engine.

Couples the :class:`~repro.simulation.clock.Clock` with the
:class:`~repro.simulation.events.EventQueue` and runs callbacks in time
order.  Components (schedulers, monitors, workload phase changes) register
one-shot or periodic events; the engine owns time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.lint.contracts import InvariantChecker
from repro.telemetry import MetricsRecorder, current_recorder

from .clock import Clock
from .events import Event, EventQueue


class SimulationError(Exception):
    """Raised for inconsistent simulation state (ordering bugs, etc.)."""


class Engine:
    """Drives a discrete-event simulation.

    Typical use::

        engine = Engine()
        engine.schedule(0, boot)
        engine.run_until(5_000_000)   # five simulated seconds
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.queue = EventQueue()
        self._running = False
        self._fired = 0
        #: Runtime contracts (docs/static_analysis.md); cheap when disabled.
        self.invariants = InvariantChecker("Engine")
        #: Telemetry hook (docs/telemetry.md); a no-op unless a recorder
        #: is injected or ambient via repro.telemetry.recording().
        self.recorder = recorder if recorder is not None else current_recorder()

    @property
    def now_usec(self) -> int:
        """Current simulated time in microseconds."""
        return self.clock.now_usec

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(
        self,
        when_usec: int,
        callback: Callable[[], None],
        *,
        name: str = "event",
        priority: int = 10,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when_usec``."""
        if when_usec < self.clock.now_usec:
            raise SimulationError(
                f"cannot schedule '{name}' in the past "
                f"({when_usec} < now {self.clock.now_usec})"
            )
        return self.queue.schedule(
            when_usec, callback, name=name, priority=priority
        )

    def schedule_after(
        self,
        delay_usec: int,
        callback: Callable[[], None],
        *,
        name: str = "event",
        priority: int = 10,
    ) -> Event:
        """Schedule ``callback`` ``delay_usec`` from now."""
        return self.schedule(
            self.clock.now_usec + delay_usec, callback, name=name, priority=priority
        )

    def schedule_periodic(
        self,
        period_usec: int,
        callback: Callable[[], None],
        *,
        name: str = "periodic",
        priority: int = 10,
        first_at_usec: Optional[int] = None,
    ) -> None:
        """Run ``callback`` every ``period_usec`` forever (until queue clear).

        The callback runs first at ``first_at_usec`` (default: one period
        from now) and re-arms itself after each firing.
        """
        if period_usec <= 0:
            raise ValueError(f"period must be positive, got {period_usec}")
        start = (
            first_at_usec
            if first_at_usec is not None
            else self.clock.now_usec + period_usec
        )

        def fire() -> None:
            callback()
            self.schedule(
                self.clock.now_usec + period_usec, fire, name=name, priority=priority
            )

        self.schedule(start, fire, name=name, priority=priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self.queue.cancel(event)

    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        when = self.queue.peek_time()
        if when is None:
            return False
        event = self.queue.pop()
        self.invariants.require(
            event.when_usec >= self.clock.now_usec,
            "clock-monotonic",
            f"event '{event.name}' at {event.when_usec} behind clock "
            f"{self.clock.now_usec}",
        )
        self.clock.advance_to(event.when_usec)
        event.callback()
        self._fired += 1
        self.recorder.inc("sim.events_fired")
        return True

    def run_until(self, until_usec: int) -> None:
        """Run events up to and including time ``until_usec``.

        The clock finishes exactly at ``until_usec`` even if the last event
        fires earlier, so periodic observers see a well-defined horizon.
        """
        if until_usec < self.clock.now_usec:
            raise SimulationError(
                f"horizon {until_usec} is before now {self.clock.now_usec}"
            )
        self._running = True
        try:
            while True:
                when = self.queue.peek_time()
                if when is None or when > until_usec:
                    break
                self.step()
        finally:
            self._running = False
        self.clock.advance_to(until_usec)

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (with a runaway guard)."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway periodic event?"
                )
