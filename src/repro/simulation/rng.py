"""Deterministic random-number management.

Every stochastic component in the simulation draws from its own named
stream derived from a single experiment seed.  Two runs with the same seed
produce bit-identical results regardless of the order in which components
are constructed, because each stream is seeded from ``(seed, name)`` rather
than from a shared generator.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, name)``.

    Uses SHA-256 so unrelated names give statistically independent streams
    and the mapping is stable across Python versions (``hash()`` is not).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_stream(seed: int, name: str = "") -> random.Random:
    """A standalone deterministic stream for components without a registry.

    Components that accept an optional injected :class:`random.Random`
    (replacement policies, migrators, fault injectors) default to this
    helper instead of constructing ``random.Random`` directly, so the
    construction of raw generators stays confined to this module
    (kyotolint rule D002).  ``name`` decorrelates streams sharing a seed.
    """
    if name:
        return random.Random(derive_seed(seed, name))
    return random.Random(seed)


class RngRegistry:
    """Factory of named, reproducible :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def reset(self) -> None:
        """Re-seed all existing streams back to their initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
