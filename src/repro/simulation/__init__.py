"""Discrete-event simulation substrate (clock, events, engine, RNG)."""

from .clock import (
    Clock,
    USEC_PER_MSEC,
    USEC_PER_SEC,
    XEN_TICK_USEC,
    XEN_TIME_SLICE_USEC,
    cycles_to_usec,
    msec_to_usec,
    usec_to_cycles,
    usec_to_msec,
)
from .engine import Engine, SimulationError
from .events import Event, EventQueue
from .rng import RngRegistry, derive_seed

__all__ = [
    "Clock",
    "Engine",
    "Event",
    "EventQueue",
    "RngRegistry",
    "SimulationError",
    "USEC_PER_MSEC",
    "USEC_PER_SEC",
    "XEN_TICK_USEC",
    "XEN_TIME_SLICE_USEC",
    "cycles_to_usec",
    "derive_seed",
    "msec_to_usec",
    "usec_to_cycles",
    "usec_to_msec",
]
