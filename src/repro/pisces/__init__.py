"""Pisces co-kernel substrate and its Kyoto extension (KS4Pisces)."""

from .cokernel import Enclave, PiscesCoKernel, PiscesError
from .ks4pisces import KS4Pisces

__all__ = ["Enclave", "KS4Pisces", "PiscesCoKernel", "PiscesError"]
