"""KS4Pisces: Kyoto enforcement inside the Pisces co-kernel.

Pisces has no time-sharing scheduler to piggyback on, so the CPU lever
takes its most direct form: when an enclave's pollution quota goes
negative its dedicated cores are forced idle (duty-cycling) until the
time-slice refill restores the quota.  Fig 8 shows this restores
performance predictability that core dedication alone cannot provide.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.engine import KyotoEngine
from repro.core.monitor import PollutionMonitor

from .cokernel import PiscesCoKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vcpu import VCpu


class KS4Pisces(PiscesCoKernel):
    """Pisces co-kernel + pollution permits."""

    name = "ks4pisces"

    def __init__(
        self,
        monitor: Optional[PollutionMonitor] = None,
        quota_max_factor: float = 3.0,
        monitor_period_ticks: int = 1,
    ) -> None:
        super().__init__()
        self._monitor = monitor
        self._quota_max_factor = quota_max_factor
        self._monitor_period_ticks = monitor_period_ticks
        self.kyoto: Optional[KyotoEngine] = None

    def attach(self, system: "VirtualizedSystem") -> None:
        super().attach(system)
        self.kyoto = KyotoEngine(
            system,
            monitor=self._monitor,
            quota_max_factor=self._quota_max_factor,
            monitor_period_ticks=self._monitor_period_ticks,
        )

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        super().on_vcpu_registered(vcpu, core_id)
        self.kyoto.register_vm(vcpu.vm)

    def is_parked(self, vcpu: "VCpu") -> bool:
        return self.kyoto.is_parked(vcpu.vm)

    def on_tick_end(self, tick_index: int) -> None:
        super().on_tick_end(tick_index)
        self.kyoto.on_tick_end(tick_index)

    def on_accounting(self, tick_index: int) -> None:
        super().on_accounting(tick_index)
        self.kyoto.on_accounting(tick_index)
