"""Pisces co-kernel substrate (Fig 7 of the paper).

Pisces (Ouyang et al., HPDC 2015) boots *lightweight co-kernels* next to
Linux: each enclave receives dedicated cores and memory and manages them
without hypervisor intervention, eliminating interference from shared
virtualization components (driver domains, the hypervisor scheduler).

What Pisces does **not** isolate is the shared LLC — that is exactly the
gap Fig 8 demonstrates and KS4Pisces closes.  The model is therefore:

* each enclave's vCPUs get dedicated cores — no time sharing, no credit
  accounting, a vCPU simply always runs on its core;
* all enclaves of a socket still share that socket's LLC occupancy
  domain, so cache contention crosses enclave boundaries untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vcpu import VCpu
    from repro.hypervisor.vm import VirtualMachine


class PiscesError(Exception):
    """Raised on enclave resource conflicts."""


@dataclass
class Enclave:
    """One co-kernel enclave: a VM plus its dedicated resources."""

    vm: "VirtualMachine"
    cores: List[int]
    memory_node: int

    @property
    def name(self) -> str:
        return self.vm.name


class PiscesCoKernel(Scheduler):
    """The Pisces "scheduler": static core dedication, no multiplexing.

    Registering more vCPUs than there are free cores is an admission
    error, as on the real system where enclaves own their cores outright.
    """

    name = "pisces"

    def __init__(self) -> None:
        super().__init__()
        self._dedicated: Dict[int, int] = {}  # core_id -> vcpu gid
        self.enclaves: List[Enclave] = []

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        if core_id in self._dedicated:
            raise PiscesError(
                f"core {core_id} is already dedicated to vCPU "
                f"{self._dedicated[core_id]}; Pisces enclaves do not share cores"
            )
        self._dedicated[core_id] = vcpu.gid
        # Group vCPUs into per-VM enclaves.
        for enclave in self.enclaves:
            if enclave.vm is vcpu.vm:
                enclave.cores.append(core_id)
                break
        else:
            self.enclaves.append(
                Enclave(
                    vm=vcpu.vm,
                    cores=[core_id],
                    memory_node=vcpu.vm.config.memory_node,
                )
            )

    def on_vcpu_unregistered(self, vcpu: "VCpu", core_id: int) -> None:
        self._dedicated.pop(core_id, None)
        for enclave in self.enclaves:
            if enclave.vm is vcpu.vm:
                if core_id in enclave.cores:
                    enclave.cores.remove(core_id)
                if not enclave.cores:
                    self.enclaves.remove(enclave)
                break

    def enclave_of(self, vm: "VirtualMachine") -> Enclave:
        for enclave in self.enclaves:
            if enclave.vm is vm:
                return enclave
        raise PiscesError(f"VM {vm.name!r} has no enclave")

    def on_tick_start(self, tick_index: int) -> None:
        for core in self.system.machine.cores:
            gid = self._dedicated.get(core.core_id)
            if gid is None:
                continue
            vcpu = next(v for v in self.vcpus if v.gid == gid)
            desired = vcpu if (vcpu.runnable and not self.is_parked(vcpu)) else None
            if core.running is not desired:
                if core.running is not None:
                    self.system.context_switch(core, None)
                if desired is not None:
                    self.system.context_switch(core, desired)

    def on_tick_end(self, tick_index: int) -> None:
        """No credit burning: enclaves own their cores."""

    def on_accounting(self, tick_index: int) -> None:
        """No credit refill either."""
