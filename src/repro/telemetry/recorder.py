"""Lightweight, dependency-free metrics recording.

The simulation computes rich per-period series internally (per-tick LLC
misses, pollution quotas, credit burn, punishments) and, before this
module existed, threw them away after formatting the human-readable
report.  A :class:`MetricsRecorder` captures three kinds of metrics:

* **counters** — monotonically accumulated totals (``inc``),
* **gauges** — last-write-wins scalars (``gauge``),
* **series** — per-tick time series with a *bounded reservoir*
  (:class:`BoundedSeries`): memory stays bounded for arbitrarily long
  runs, and any resolution loss is counted, never silent.

Recording is strictly an *observer*: nothing in the simulation reads a
recorder back, so enabling telemetry cannot change simulated results.
The :class:`NullRecorder` (module singleton :data:`NULL_RECORDER`) is the
default everywhere — its methods are no-ops, so unmonitored runs pay one
attribute lookup and call per hook at most, and hot per-substep paths
guard on :attr:`MetricsRecorder.enabled` to pay nothing at all.

Components resolve their recorder at construction time from the ambient
:func:`current_recorder`, which the campaign runner swaps in via the
:func:`recording` context manager — so the 14 experiment drivers gained
telemetry without threading a parameter through every call site.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .stream import StreamingSink

#: Default cap on stored points per series.
DEFAULT_MAX_SERIES_POINTS = 4096

#: Counter bumped by :meth:`MetricsRecorder.record` whenever a series
#: compacts its reservoir (truncation is logged, not silent).
COMPACTION_COUNTER = "telemetry.series_compactions"

#: Counter bumped by :meth:`MetricsRecorder.compact_retired_series` per
#: series dropped when a VM retires (docs/service.md).
RETIRED_SERIES_COUNTER = "service.retired_series_compactions"

#: Counter bumped by :meth:`MetricsRecorder.compact_retired_series` per
#: retired series whose full history lives on in the attached streaming
#: sink (docs/telemetry.md) — dropped from memory, preserved on disk.
RETIRED_SERIES_STREAMED_COUNTER = "service.retired_series_streamed"


class BoundedSeries:
    """A per-tick series whose storage never exceeds ``max_points``.

    Points are accepted at a stride that starts at 1; when the reservoir
    fills, every other stored point is discarded and the stride doubles,
    so the series always spans the whole run at a coarser resolution.
    The policy is purely count-based and therefore deterministic: the
    same sequence of appends always yields the same stored points.
    """

    def __init__(
        self, name: str, max_points: int = DEFAULT_MAX_SERIES_POINTS
    ) -> None:
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.name = name
        self.max_points = max_points
        self.ticks: List[int] = []
        self.values: List[float] = []
        #: Total points offered via :meth:`append` (stored or not).
        self.offered = 0
        #: Current acceptance stride (1 until the first compaction).
        self.stride = 1

    def append(self, tick: int, value: float) -> bool:
        """Offer one point.  Returns True when a compaction happened."""
        index = self.offered
        self.offered += 1
        if index % self.stride != 0:
            return False
        compacted = False
        if len(self.ticks) >= self.max_points:
            self.ticks = self.ticks[::2]
            self.values = self.values[::2]
            self.stride *= 2
            compacted = True
            if index % self.stride != 0:
                return compacted
        self.ticks.append(tick)
        self.values.append(value)
        return compacted

    @property
    def dropped(self) -> int:
        """Points offered but not stored (resolution lost to bounding)."""
        return self.offered - len(self.ticks)

    def __len__(self) -> int:
        return len(self.ticks)


class MetricsRecorder:
    """Counters, gauges and bounded per-tick series."""

    #: Hot paths may skip derived-value computation when this is False.
    enabled = True

    def __init__(
        self,
        max_series_points: int = DEFAULT_MAX_SERIES_POINTS,
        sink: Optional["StreamingSink"] = None,
    ) -> None:
        self.max_series_points = max_series_points
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._series: Dict[str, BoundedSeries] = {}
        #: Optional full-resolution spool (repro.telemetry.stream/1):
        #: every offered point also streams to disk, so the bounded
        #: in-memory reservoir can decimate without losing evidence.
        self.sink = sink

    # -- writing ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` into counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def record(self, name: str, tick: int, value: float) -> None:
        """Append one point to per-tick series ``name``."""
        if self.sink is not None:
            self.sink.append(name, tick, value)
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = BoundedSeries(
                name, self.max_series_points
            )
        if series.append(tick, value):
            self.inc(COMPACTION_COUNTER)

    def compact_retired_series(self, prefix: str) -> int:
        """Drop series named ``prefix`` or dotted under ``prefix.``.

        Called when a VM retires: its per-VM series (``kyoto.quota.<vm>``
        and friends) would otherwise accumulate forever on churny soak
        runs.  Matching respects the dot boundary so retiring ``vm-1``
        never compacts a live ``vm-12``.  Each dropped series bumps
        :data:`RETIRED_SERIES_COUNTER`, so the compaction is observable,
        never silent.  Returns the number of series dropped.

        Without a sink the drop is destructive — the decimated reservoir
        was the only copy.  With a :class:`~repro.telemetry.stream.StreamingSink`
        attached, each doomed series' buffered tail is flushed to disk
        *before* the reservoir is dropped and
        :data:`RETIRED_SERIES_STREAMED_COUNTER` counts it: the VM's full
        history survives in the stream, only the live view is released.
        """
        subtree = prefix + "."
        doomed = [
            name
            for name in self._series
            if name == prefix or name.startswith(subtree)
        ]
        for name in doomed:
            if self.sink is not None:
                self.sink.flush_series(name)
            del self._series[name]
        if doomed:
            self.inc(RETIRED_SERIES_COUNTER, float(len(doomed)))
            if self.sink is not None:
                self.inc(RETIRED_SERIES_STREAMED_COUNTER, float(len(doomed)))
        return len(doomed)

    # -- reading ---------------------------------------------------------------

    def series(self, name: str) -> Optional[BoundedSeries]:
        """The named series, or None if never recorded."""
        return self._series.get(name)

    def series_names(self) -> List[str]:
        """Sorted names of all recorded series."""
        return sorted(self._series)


class NullRecorder(MetricsRecorder):
    """The default no-op recorder: accepts every call, stores nothing."""

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def record(self, name: str, tick: int, value: float) -> None:
        return None

    def compact_retired_series(self, prefix: str) -> int:
        return 0


#: Shared stateless no-op instance used as the default hook everywhere.
NULL_RECORDER = NullRecorder()

_current: MetricsRecorder = NULL_RECORDER


def current_recorder() -> MetricsRecorder:
    """The ambient recorder new components pick up at construction."""
    return _current


@contextmanager
def recording(
    recorder: MetricsRecorder,
    sink: Optional["StreamingSink"] = None,
) -> Iterator[MetricsRecorder]:
    """Make ``recorder`` the ambient recorder for the duration of a run.

    With ``sink=`` the :class:`~repro.telemetry.stream.StreamingSink`
    is attached to the recorder for the block and *closed on exit*
    (flushing every buffered batch and writing the ``final``
    counters/gauges record), so the whole full-resolution capture of a
    run is one ``with`` statement.  A recorder that already carries a
    different sink refuses the attach — silently swapping spools would
    split one run's evidence across two directories.
    """
    global _current
    if sink is not None:
        if recorder.sink is not None and recorder.sink is not sink:
            raise ValueError(
                "recorder already has a streaming sink attached; "
                "one run spools to one stream directory"
            )
        recorder.sink = sink
    previous = _current
    _current = recorder
    try:
        yield recorder
    finally:
        _current = previous
        if sink is not None:
            recorder.sink = None
            sink.close(recorder)
