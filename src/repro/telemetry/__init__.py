"""Telemetry: structured metrics out of the simulation (docs/telemetry.md).

Public surface:

* :class:`MetricsRecorder` / :class:`NullRecorder` / :data:`NULL_RECORDER`
* :class:`BoundedSeries` — the bounded per-tick reservoir
* :func:`current_recorder` / :func:`recording` — ambient-recorder plumbing
* :func:`to_json_dict` / :func:`from_json_dict` — the
  ``repro.telemetry/1`` JSON schema
"""

from .recorder import (
    COMPACTION_COUNTER,
    DEFAULT_MAX_SERIES_POINTS,
    NULL_RECORDER,
    RETIRED_SERIES_COUNTER,
    RETIRED_SERIES_STREAMED_COUNTER,
    BoundedSeries,
    MetricsRecorder,
    NullRecorder,
    current_recorder,
    recording,
)
from .export import (
    TELEMETRY_SCHEMA,
    TelemetrySchemaError,
    from_json_dict,
    to_json_dict,
)
from .stream import (
    STREAM_SCHEMA,
    StreamData,
    StreamError,
    StreamSeries,
    StreamingSink,
    is_stream_dir,
    read_stream,
)

__all__ = [
    "BoundedSeries",
    "COMPACTION_COUNTER",
    "DEFAULT_MAX_SERIES_POINTS",
    "MetricsRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "RETIRED_SERIES_COUNTER",
    "RETIRED_SERIES_STREAMED_COUNTER",
    "STREAM_SCHEMA",
    "StreamData",
    "StreamError",
    "StreamSeries",
    "StreamingSink",
    "TELEMETRY_SCHEMA",
    "TelemetrySchemaError",
    "current_recorder",
    "from_json_dict",
    "is_stream_dir",
    "read_stream",
    "recording",
    "to_json_dict",
]
