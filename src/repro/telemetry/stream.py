"""Streaming telemetry sink (schema ``repro.telemetry.stream/1``).

The in-memory :class:`~repro.telemetry.recorder.BoundedSeries` trades
resolution for memory: past ``max_points`` it decimates, which is
exactly wrong for the figure-class evidence this repo exists to produce
— Kyoto's claims rest on *per-tick* pollution/quota traces, and a
100k-tick ``repro serve`` soak under a 4096-point reservoir keeps one
point in 25.  A :class:`StreamingSink` removes the trade: every offered
point is spooled to disk at full resolution while memory stays
O(batch), and the in-memory recorder keeps serving its bounded live
view unchanged.

On-disk format — herd-journal-style chunked JSONL:

* a *stream directory* holds ``chunk-000000.jsonl``,
  ``chunk-000001.jsonl``, ... in strictly increasing order;
* every line is one self-contained JSON record; the first line of every
  chunk is a ``header`` record carrying the schema tag and chunk index;
* series points travel in ``points`` records — one series name plus
  parallel ``ticks`` / ``values`` batches — so the per-point framing
  overhead is amortised;
* :meth:`StreamingSink.close` appends a ``final`` record with the
  recorder's counters and gauges, marking a complete stream.

Durability follows the herd journal's discipline: a chunk is flushed
and fsynced before the sink rolls to its successor (and again at
close), so a crash can only ever leave a *partial last line in the last
chunk*.  Recovery therefore never repairs anything:
:func:`read_stream` parses line by line and stops at the first torn
line, returning the longest valid prefix (the property the truncation
tests pin byte by byte).

Nothing in here draws randomness or reads the wall clock — a stream is
a pure function of the points offered to it, so two identical runs
write byte-identical chunks.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Schema identifier carried by every chunk header.
STREAM_SCHEMA = "repro.telemetry.stream/1"

#: Chunk filename pattern (index is zero-padded so sort order == age).
CHUNK_PREFIX = "chunk-"
CHUNK_SUFFIX = ".jsonl"

#: Default chunk-roll threshold (bytes written to the current chunk).
DEFAULT_MAX_CHUNK_BYTES = 4 * 1024 * 1024

#: Default per-series buffered points before a batch record is written.
DEFAULT_BATCH_POINTS = 512


class StreamError(ValueError):
    """Raised on unreadable stream directories or invalid sink usage."""


def chunk_filename(index: int) -> str:
    """Filename of chunk ``index`` inside a stream directory."""
    return f"{CHUNK_PREFIX}{index:06d}{CHUNK_SUFFIX}"


def is_stream_dir(path: str) -> bool:
    """True when ``path`` is a directory holding at least one chunk."""
    if not os.path.isdir(path):
        return False
    return os.path.isfile(os.path.join(path, chunk_filename(0)))


class StreamingSink:
    """Append-only, bounded-memory spool for full-resolution series.

    ``append`` buffers points per series and writes one batched
    ``points`` record whenever a series accumulates ``batch_points`` of
    them, so memory stays O(live series x batch) regardless of run
    length.  ``flush_series`` force-writes one series' buffer — the
    retire-time hook :meth:`MetricsRecorder.compact_retired_series`
    uses it so a retired VM's history is on disk before the in-memory
    reservoir drops it.  ``close`` flushes everything, appends the
    ``final`` counters/gauges record and fsyncs.
    """

    def __init__(
        self,
        directory: str,
        *,
        max_chunk_bytes: int = DEFAULT_MAX_CHUNK_BYTES,
        batch_points: int = DEFAULT_BATCH_POINTS,
    ) -> None:
        if max_chunk_bytes < 4096:
            raise StreamError(
                f"max_chunk_bytes must be >= 4096, got {max_chunk_bytes}"
            )
        if batch_points < 1:
            raise StreamError(
                f"batch_points must be >= 1, got {batch_points}"
            )
        self.directory = directory
        self.max_chunk_bytes = max_chunk_bytes
        self.batch_points = batch_points
        os.makedirs(directory, exist_ok=True)
        #: Points accepted over the sink's lifetime (buffered or written).
        self.points_streamed = 0
        #: Chunks opened so far (== index of the current chunk + 1).
        self.chunks_rolled = 0
        self._buffers: Dict[str, Tuple[List[int], List[float]]] = {}
        self._handle: Optional[Any] = None
        self._chunk_bytes = 0
        self._closed = False
        self._open_chunk()

    # -- writing ---------------------------------------------------------------

    def append(self, name: str, tick: int, value: float) -> None:
        """Accept one series point (buffered; never lost once closed)."""
        if self._closed:
            raise StreamError("append() on a closed StreamingSink")
        buffer = self._buffers.get(name)
        if buffer is None:
            buffer = self._buffers[name] = ([], [])
        buffer[0].append(tick)
        buffer[1].append(value)
        self.points_streamed += 1
        if len(buffer[0]) >= self.batch_points:
            self._write_batch(name, buffer)

    def flush_series(self, name: str) -> int:
        """Write ``name``'s buffered points now; returns points written."""
        if self._closed:
            raise StreamError("flush_series() on a closed StreamingSink")
        buffer = self._buffers.get(name)
        if not buffer or not buffer[0]:
            return 0
        count = len(buffer[0])
        self._write_batch(name, buffer)
        return count

    def flush(self) -> None:
        """Write every buffered batch (deterministic sorted-name order)."""
        if self._closed:
            raise StreamError("flush() on a closed StreamingSink")
        for name in sorted(self._buffers):
            buffer = self._buffers[name]
            if buffer[0]:
                self._write_batch(name, buffer)
        assert self._handle is not None
        self._handle.flush()

    def close(self, recorder: Optional[Any] = None) -> None:
        """Flush, append the ``final`` record, fsync and close.

        ``recorder`` (a :class:`~repro.telemetry.recorder.MetricsRecorder`)
        contributes its counters and gauges to the ``final`` record so a
        stream directory is self-contained: series at full resolution
        plus the run's scalar outcomes.  Closing twice is a no-op.
        """
        if self._closed:
            return
        self.flush()
        final: Dict[str, Any] = {"event": "final"}
        if recorder is not None:
            final["counters"] = {
                name: recorder.counters[name]
                for name in sorted(recorder.counters)
            }
            final["gauges"] = {
                name: recorder.gauges[name]
                for name in sorted(recorder.gauges)
            }
            final["max_series_points"] = recorder.max_series_points
        self._write_record(final)
        handle = self._handle
        assert handle is not None
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        self._handle = None
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "StreamingSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- chunk mechanics -------------------------------------------------------

    def _open_chunk(self) -> None:
        index = self.chunks_rolled
        path = os.path.join(self.directory, chunk_filename(index))
        if os.path.exists(path):
            raise StreamError(
                f"stream directory {self.directory!r} already holds "
                f"{chunk_filename(index)}; streams are never appended to "
                "after the fact — write into a fresh directory"
            )
        self._handle = open(path, "w", encoding="utf-8")
        self._chunk_bytes = 0
        self.chunks_rolled += 1
        self._write_record(
            {"event": "header", "schema": STREAM_SCHEMA, "chunk": index}
        )

    def _roll_chunk(self) -> None:
        """Seal the current chunk durably and open its successor."""
        handle = self._handle
        assert handle is not None
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        self._open_chunk()

    def _write_batch(
        self, name: str, buffer: Tuple[List[int], List[float]]
    ) -> None:
        self._write_record(
            {"event": "points", "series": name,
             "ticks": buffer[0], "values": buffer[1]}
        )
        buffer[0].clear()
        buffer[1].clear()

    def _write_record(self, record: Dict[str, Any]) -> None:
        handle = self._handle
        assert handle is not None
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        handle.write(line + "\n")
        self._chunk_bytes += len(line) + 1
        if record.get("event") == "points" and (
            self._chunk_bytes >= self.max_chunk_bytes
        ):
            self._roll_chunk()


# -- reading -----------------------------------------------------------------


@dataclass
class StreamSeries:
    """One fully-resolved series read back from a stream directory."""

    name: str
    ticks: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ticks)


@dataclass
class StreamData:
    """Everything :func:`read_stream` recovered from a stream directory."""

    directory: str
    #: name -> full-resolution series, insertion-ordered by first point.
    series: Dict[str, StreamSeries]
    counters: Dict[str, float]
    gauges: Dict[str, float]
    #: Chunks successfully opened (valid header seen).
    chunks_read: int
    #: False when reading stopped at a torn/corrupt line (crash signature).
    clean: bool
    #: True when the ``final`` record was seen (the sink closed cleanly).
    finalized: bool

    def series_names(self) -> List[str]:
        return sorted(self.series)


def stream_chunks(directory: str) -> List[str]:
    """Sorted chunk paths of a stream directory (may be empty)."""
    if not os.path.isdir(directory):
        raise StreamError(f"no such stream directory: {directory}")
    return [
        os.path.join(directory, entry)
        for entry in sorted(os.listdir(directory))
        if entry.startswith(CHUNK_PREFIX) and entry.endswith(CHUNK_SUFFIX)
    ]


def read_stream(directory: str) -> StreamData:
    """Recover a stream directory's longest valid prefix.

    Chunks are consumed in index order; inside a chunk, records are
    consumed line by line and reading stops *entirely* at the first
    torn or undecodable line — everything after a tear is untrusted
    (the tear marks where a crash cut the stream).  A chunk whose
    header is missing, torn or carries the wrong schema likewise ends
    the read.  The result is always a consistent prefix of what the
    sink accepted; ``clean`` reports whether the whole stream survived
    and ``finalized`` whether the sink closed properly.
    """
    chunk_paths = stream_chunks(directory)
    if not chunk_paths:
        raise StreamError(f"no stream chunks in {directory}")
    data = StreamData(
        directory=directory,
        series={},
        counters={},
        gauges={},
        chunks_read=0,
        clean=True,
        finalized=False,
    )
    expected_index = 0
    for path in chunk_paths:
        records, torn = _scan_chunk(path)
        if not records:
            data.clean = False
            return data
        header = records[0]
        if (
            header.get("event") != "header"
            or header.get("schema") != STREAM_SCHEMA
            or header.get("chunk") != expected_index
        ):
            data.clean = False
            return data
        data.chunks_read += 1
        expected_index += 1
        for record in records[1:]:
            _fold_record(data, record)
        if torn:
            data.clean = False
            return data
    return data


def _scan_chunk(path: str) -> Tuple[List[Dict[str, Any]], bool]:
    """Parse one chunk into ``(records, torn)``; stops at the first tear."""
    records: List[Dict[str, Any]] = []
    torn = False
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                torn = True
                break
            if not isinstance(record, dict) or "event" not in record:
                torn = True
                break
            records.append(record)
    return records, torn


def _fold_record(data: StreamData, record: Dict[str, Any]) -> None:
    event = record.get("event")
    if event == "points":
        name = record.get("series")
        ticks = record.get("ticks")
        values = record.get("values")
        if (
            not isinstance(name, str)
            or not isinstance(ticks, list)
            or not isinstance(values, list)
            or len(ticks) != len(values)
        ):
            data.clean = False
            return
        series = data.series.get(name)
        if series is None:
            series = data.series[name] = StreamSeries(name=name)
        series.ticks.extend(int(t) for t in ticks)
        series.values.extend(float(v) for v in values)
    elif event == "final":
        for key, value in record.get("counters", {}).items():
            data.counters[key] = float(value)
        for key, value in record.get("gauges", {}).items():
            data.gauges[key] = float(value)
        data.finalized = True
    # Unknown events are tolerated for forward compatibility: a reader
    # of repro.telemetry.stream/1 skips what it does not understand.


__all__ = [
    "CHUNK_PREFIX",
    "CHUNK_SUFFIX",
    "DEFAULT_BATCH_POINTS",
    "DEFAULT_MAX_CHUNK_BYTES",
    "STREAM_SCHEMA",
    "StreamData",
    "StreamError",
    "StreamSeries",
    "StreamingSink",
    "chunk_filename",
    "is_stream_dir",
    "read_stream",
    "stream_chunks",
]
