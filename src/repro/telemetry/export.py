"""JSON export schema for telemetry (``repro.telemetry/1``).

The schema is flat and self-describing so campaign artifacts stay
greppable and diffable::

    {
      "schema": "repro.telemetry/1",
      "max_series_points": 4096,
      "counters": {"kyoto.samples": 120.0, ...},
      "gauges": {"sim.final_tick": 119.0, ...},
      "series": {
        "sys.llc_misses_per_tick": {
          "ticks": [0, 1, ...],
          "values": [8123.0, ...],
          "offered": 120,
          "dropped": 0,
          "stride": 1
        }
      }
    }

``offered``/``dropped``/``stride`` make reservoir truncation visible in
the artifact itself; consumers must treat ``dropped > 0`` as "the series
is a deterministic 1-in-``stride`` decimation of the full run".
:func:`from_json_dict` restores a recorder exactly, so export/import is
a lossless round trip (which the test suite pins).
"""

from __future__ import annotations

from typing import Any, Dict

from .recorder import BoundedSeries, MetricsRecorder

#: Schema identifier embedded in every export.
TELEMETRY_SCHEMA = "repro.telemetry/1"


class TelemetrySchemaError(ValueError):
    """Raised when an imported document does not match the schema."""


def to_json_dict(recorder: MetricsRecorder) -> Dict[str, Any]:
    """Serialise a recorder to a JSON-ready dict (sorted, stable keys)."""
    series: Dict[str, Any] = {}
    for name in recorder.series_names():
        entry = recorder.series(name)
        assert entry is not None
        series[name] = {
            "ticks": list(entry.ticks),
            "values": list(entry.values),
            "offered": entry.offered,
            "dropped": entry.dropped,
            "stride": entry.stride,
        }
    return {
        "schema": TELEMETRY_SCHEMA,
        "max_series_points": recorder.max_series_points,
        "counters": {k: recorder.counters[k] for k in sorted(recorder.counters)},
        "gauges": {k: recorder.gauges[k] for k in sorted(recorder.gauges)},
        "series": series,
    }


def from_json_dict(data: Dict[str, Any]) -> MetricsRecorder:
    """Rebuild a :class:`MetricsRecorder` from :func:`to_json_dict` output.

    The import *validates*, never repairs: a document that is internally
    inconsistent — ragged series, ``offered`` smaller than the stored
    point count, a non-positive ``stride``, a missing or sub-minimum
    ``max_series_points`` — raises :class:`TelemetrySchemaError` instead
    of silently restoring a recorder that would misbehave (a
    ``max_series_points`` clamped to 2 compacts on the very next point;
    an understated ``offered`` makes ``dropped`` negative).
    """
    if not isinstance(data, dict):
        raise TelemetrySchemaError(f"telemetry document must be a dict, got {type(data).__name__}")
    schema = data.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise TelemetrySchemaError(
            f"unsupported telemetry schema {schema!r}; expected {TELEMETRY_SCHEMA!r}"
        )
    max_series_points = data.get("max_series_points")
    if not isinstance(max_series_points, int) or isinstance(
        max_series_points, bool
    ):
        raise TelemetrySchemaError(
            "max_series_points must be an integer, got "
            f"{max_series_points!r}"
        )
    if max_series_points < 2:
        raise TelemetrySchemaError(
            f"max_series_points must be >= 2, got {max_series_points}"
        )
    recorder = MetricsRecorder(max_series_points=max_series_points)
    for name, value in data.get("counters", {}).items():
        recorder.counters[name] = float(value)
    for name, value in data.get("gauges", {}).items():
        recorder.gauges[name] = float(value)
    for name, entry in data.get("series", {}).items():
        if not isinstance(entry, dict):
            raise TelemetrySchemaError(
                f"series {name!r} must be an object, got "
                f"{type(entry).__name__}"
            )
        ticks = entry.get("ticks", [])
        values = entry.get("values", [])
        if len(ticks) != len(values):
            raise TelemetrySchemaError(
                f"series {name!r} has {len(ticks)} ticks but {len(values)} values"
            )
        if len(ticks) > max_series_points:
            raise TelemetrySchemaError(
                f"series {name!r} stores {len(ticks)} points but "
                f"max_series_points is {max_series_points}"
            )
        stride = int(entry.get("stride", 1))
        if stride < 1:
            raise TelemetrySchemaError(
                f"series {name!r} has nonsensical stride {stride}"
            )
        offered = int(entry.get("offered", len(ticks)))
        if offered < len(ticks):
            raise TelemetrySchemaError(
                f"series {name!r} claims {offered} offered points but "
                f"stores {len(ticks)} — dropped would be negative"
            )
        series = BoundedSeries(name, max_series_points)
        series.ticks = [int(t) for t in ticks]
        series.values = [float(v) for v in values]
        series.offered = offered
        series.stride = stride
        recorder._series[name] = series
    return recorder
