"""JSON export schema for telemetry (``repro.telemetry/1``).

The schema is flat and self-describing so campaign artifacts stay
greppable and diffable::

    {
      "schema": "repro.telemetry/1",
      "max_series_points": 4096,
      "counters": {"kyoto.samples": 120.0, ...},
      "gauges": {"sim.final_tick": 119.0, ...},
      "series": {
        "sys.llc_misses_per_tick": {
          "ticks": [0, 1, ...],
          "values": [8123.0, ...],
          "offered": 120,
          "dropped": 0,
          "stride": 1
        }
      }
    }

``offered``/``dropped``/``stride`` make reservoir truncation visible in
the artifact itself; consumers must treat ``dropped > 0`` as "the series
is a deterministic 1-in-``stride`` decimation of the full run".
:func:`from_json_dict` restores a recorder exactly, so export/import is
a lossless round trip (which the test suite pins).
"""

from __future__ import annotations

from typing import Any, Dict

from .recorder import BoundedSeries, MetricsRecorder

#: Schema identifier embedded in every export.
TELEMETRY_SCHEMA = "repro.telemetry/1"


class TelemetrySchemaError(ValueError):
    """Raised when an imported document does not match the schema."""


def to_json_dict(recorder: MetricsRecorder) -> Dict[str, Any]:
    """Serialise a recorder to a JSON-ready dict (sorted, stable keys)."""
    series: Dict[str, Any] = {}
    for name in recorder.series_names():
        entry = recorder.series(name)
        assert entry is not None
        series[name] = {
            "ticks": list(entry.ticks),
            "values": list(entry.values),
            "offered": entry.offered,
            "dropped": entry.dropped,
            "stride": entry.stride,
        }
    return {
        "schema": TELEMETRY_SCHEMA,
        "max_series_points": recorder.max_series_points,
        "counters": {k: recorder.counters[k] for k in sorted(recorder.counters)},
        "gauges": {k: recorder.gauges[k] for k in sorted(recorder.gauges)},
        "series": series,
    }


def from_json_dict(data: Dict[str, Any]) -> MetricsRecorder:
    """Rebuild a :class:`MetricsRecorder` from :func:`to_json_dict` output."""
    if not isinstance(data, dict):
        raise TelemetrySchemaError(f"telemetry document must be a dict, got {type(data).__name__}")
    schema = data.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise TelemetrySchemaError(
            f"unsupported telemetry schema {schema!r}; expected {TELEMETRY_SCHEMA!r}"
        )
    recorder = MetricsRecorder(
        max_series_points=int(data.get("max_series_points", 0) or 2)
    )
    for name, value in data.get("counters", {}).items():
        recorder.counters[name] = float(value)
    for name, value in data.get("gauges", {}).items():
        recorder.gauges[name] = float(value)
    for name, entry in data.get("series", {}).items():
        ticks = entry.get("ticks", [])
        values = entry.get("values", [])
        if len(ticks) != len(values):
            raise TelemetrySchemaError(
                f"series {name!r} has {len(ticks)} ticks but {len(values)} values"
            )
        series = BoundedSeries(name, recorder.max_series_points)
        series.ticks = [int(t) for t in ticks]
        series.values = [float(v) for v in values]
        series.offered = int(entry.get("offered", len(ticks)))
        series.stride = int(entry.get("stride", 1))
        recorder._series[name] = series
    return recorder
