"""Small shared utilities.

This module is the repo's **one sanctioned wall-clock entry point**:
kyotolint rule D003 forbids ``time.time()`` / ``datetime.now()`` anywhere
else under ``src/repro``, so reporting code that genuinely needs elapsed
real time (the CLI's per-experiment timing) must route through
:func:`wall_clock`.  Simulation code must never need it — simulated time
lives in :mod:`repro.simulation.clock`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any


def wall_clock() -> float:
    """Seconds since the epoch, for *reporting only*.

    Never feed this into simulation logic: results must be a function of
    the experiment seed alone.
    """
    return time.time()


def elapsed_since(start: float) -> float:
    """Wall-clock seconds elapsed since ``start`` (a wall_clock() value)."""
    return wall_clock() - start


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically; returns ``path``.

    The content lands in a temp file in the destination directory and is
    ``os.replace``d into place, so a kill mid-write can never leave a
    truncated file behind — readers see the old content or the new
    content, never half a document.  Every CLI artifact write routes
    through here (or :func:`repro.experiments.campaign.write_artifact`,
    which follows the same discipline).
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    handle_fd, tmp_path = tempfile.mkstemp(
        dir=parent or ".", prefix=".atomic-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def atomic_write_json(path: str, document: Any) -> str:
    """Serialise ``document`` (sorted keys, 2-space indent) atomically."""
    return atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
