"""Small shared utilities.

This module is the repo's **one sanctioned wall-clock entry point**:
kyotolint rule D003 forbids ``time.time()`` / ``datetime.now()`` anywhere
else under ``src/repro``, so reporting code that genuinely needs elapsed
real time (the CLI's per-experiment timing) must route through
:func:`wall_clock`.  Simulation code must never need it — simulated time
lives in :mod:`repro.simulation.clock`.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """Seconds since the epoch, for *reporting only*.

    Never feed this into simulation logic: results must be a function of
    the experiment seed alone.
    """
    return time.time()


def elapsed_since(start: float) -> float:
    """Wall-clock seconds elapsed since ``start`` (a wall_clock() value)."""
    return wall_clock() - start
