"""Crash-resilient, resumable campaign orchestration (``repro herd``).

The herd turns a sweep grid into a durable work queue: every point's
lifecycle is journalled (:mod:`repro.herd.journal`), up to ``--jobs N``
supervised watchdog workers run concurrently (:mod:`repro.herd.pool`),
transient failures retry under deterministic exponential backoff
(:mod:`repro.herd.backoff`), poison points are quarantined after a
bounded attempt budget, and a killed campaign resumes from its journal
(:mod:`repro.herd.orchestrator`) to the same merged summary an
uninterrupted run produces (:mod:`repro.herd.merge`).  See
``docs/herd.md``.
"""

from .backoff import BackoffError, BackoffPolicy
from .journal import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA,
    HerdState,
    JournalError,
    JournalWriter,
    PointRecord,
    journal_path,
    replay_journal,
    replay_records,
    scan_journal,
)
from .merge import (
    SUMMARY_FILENAME,
    merge_state,
    normalized_for_comparison,
    summary_path,
    write_summary,
)
from .orchestrator import (
    HerdConfig,
    HerdError,
    HerdPoint,
    expand_points,
    herd_status,
    point_for,
    resume_herd,
    run_herd,
)
from .pool import (
    DEFAULT_GRACE_SEC,
    PoolError,
    SupervisedPool,
    WorkerOutcome,
    stop_child,
)

__all__ = [
    "BackoffError",
    "BackoffPolicy",
    "DEFAULT_GRACE_SEC",
    "HerdConfig",
    "HerdError",
    "HerdPoint",
    "HerdState",
    "JOURNAL_FILENAME",
    "JOURNAL_SCHEMA",
    "JournalError",
    "JournalWriter",
    "PointRecord",
    "PoolError",
    "SUMMARY_FILENAME",
    "SupervisedPool",
    "WorkerOutcome",
    "expand_points",
    "herd_status",
    "journal_path",
    "merge_state",
    "normalized_for_comparison",
    "point_for",
    "replay_journal",
    "replay_records",
    "resume_herd",
    "run_herd",
    "scan_journal",
    "stop_child",
    "summary_path",
    "write_summary",
]
