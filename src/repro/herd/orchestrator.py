"""The herd orchestrator: crash-resilient, resumable campaign runs.

``repro herd run`` expands a sweep/experiment list into *points*, gives
each point a **content-keyed id** (a hash of the scenario's canonical
serialization, not of its file path — editing a sweep file changes the
ids, so a resume never wrongly skips changed work), journals every
lifecycle transition durably (:mod:`repro.herd.journal`) and drives the
queue over ``--jobs N`` concurrently supervised watchdog workers
(:mod:`repro.herd.pool`).

Failure taxonomy:

* an experiment that *raises* is deterministic — the exception would
  recur on every retry — so it concludes the point (``failed``) with the
  traceback captured in its artifact;
* a worker that **crashes** or **times out** is transient — the point is
  retried under exponential backoff with deterministic jitter
  (:mod:`repro.herd.backoff`) up to ``max_attempts``, after which the
  point is **quarantined**: it gets a synthetic ``ok: false`` artifact
  and the campaign moves on instead of wedging.

``repro herd resume DIR`` replays the journal, skips points whose
content-keyed id already reached ``done``, re-enqueues in-flight and
retryable ones (an orphaned in-flight attempt counts against the
budget), and appends to the same journal — so any number of crashes and
resumes still converges on the same merged campaign document
(:mod:`repro.herd.merge`) an uninterrupted run produces.
"""

from __future__ import annotations

import hashlib
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.scenario import ScenarioError, dumps_json
from repro.telemetry import MetricsRecorder, recording
from repro.util import wall_clock

from repro.experiments.campaign import (
    CampaignError,
    _run_one_into,
    failure_artifact,
    write_artifact,
)
from repro.experiments.registry import (
    REGISTRY,
    expand_names,
    resolve,
    scenario_spec_of,
)

from .backoff import BackoffPolicy
from .journal import (
    JOURNAL_SCHEMA,
    HerdState,
    JournalError,
    JournalWriter,
    PointRecord,
    journal_path,
    replay_journal,
)
from .merge import merge_state, write_summary
from .pool import DEFAULT_GRACE_SEC, SupervisedPool


class HerdError(ValueError):
    """Raised on invalid herd inputs (bad names, bad config, bad resume)."""


@dataclass(frozen=True)
class HerdConfig:
    """Orchestration knobs recorded in the journal header."""

    jobs: int = 1
    timeout_sec: Optional[float] = None
    max_attempts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    seed: int = 0
    grace_sec: float = DEFAULT_GRACE_SEC

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise HerdError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout_sec is not None and self.timeout_sec <= 0:
            raise HerdError(
                f"timeout_sec must be positive, got {self.timeout_sec}"
            )
        if self.max_attempts < 1:
            raise HerdError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.grace_sec <= 0:
            raise HerdError(f"grace_sec must be positive, got {self.grace_sec}")


class HerdPoint(NamedTuple):
    """One unit of campaign work."""

    point_id: str
    #: Registry name or scenario token — what the worker actually runs.
    token: str
    #: Display/artifact name (sweep points embed their ``@axis=value``).
    name: str


def _digest(content: str) -> str:
    return hashlib.sha256(content.encode("utf-8")).hexdigest()[:16]


def point_for(token: str) -> HerdPoint:
    """Content-keyed identity of one point.

    Registry experiments key on their (stable) name + description; a
    scenario point keys on the canonical JSON of its fully-expanded
    spec, so two tokens denoting the same grid point share an id and an
    edited spec gets a fresh one.  An unresolvable token still gets a
    deterministic id — the failure is the run's to report, not ours.
    """
    if token in REGISTRY:
        spec = REGISTRY[token]
        return HerdPoint(
            _digest(f"registry:{token}:{spec.description}"), token, token
        )
    try:
        spec = scenario_spec_of(token)
    except ScenarioError:
        return HerdPoint(_digest(f"unresolvable:{token}"), token, token)
    return HerdPoint(
        _digest(f"scenario:{dumps_json(spec)}"), token, spec.name
    )


def expand_points(names: Sequence[str]) -> List[HerdPoint]:
    """Expand user input into identified points; raises on unknown names."""
    known, unknown = expand_names(names)
    if unknown:
        raise HerdError(f"unknown experiment(s): {', '.join(unknown)}")
    if not known:
        raise HerdError("no experiments to run")
    return [point_for(token) for token in known]


# -- the drive loop ----------------------------------------------------------


class _QueueEntry(NamedTuple):
    point_id: str
    attempt: int


class _Driver:
    """One orchestration session over an open journal."""

    def __init__(
        self,
        state: HerdState,
        tokens: Dict[str, str],
        json_dir: str,
        config: HerdConfig,
        journal: JournalWriter,
        recorder: MetricsRecorder,
        out: IO[str],
    ) -> None:
        self.state = state
        self.tokens = tokens
        self.json_dir = json_dir
        self.config = config
        self.journal = journal
        self.recorder = recorder
        self.out = out
        self.pending: List[_QueueEntry] = []
        #: (ready_at_wall, point_id, attempt) retry schedule.
        self.waiting: List[Tuple[float, str, int]] = []
        #: point_id -> attempt currently in flight.
        self.in_flight: Dict[str, int] = {}

    # -- queue management ------------------------------------------------------

    def enqueue(self, point: PointRecord) -> None:
        attempt = point.attempts_used + 1
        self.journal.append(
            {"event": "enqueued", "point": point.point_id, "attempt": attempt}
        )
        self.recorder.inc("herd.enqueued")
        point.status = "pending"
        self.pending.append(_QueueEntry(point.point_id, attempt))

    def _promote_ready(self) -> None:
        now = wall_clock()
        still_waiting: List[Tuple[float, str, int]] = []
        for ready_at, point_id, attempt in self.waiting:
            if ready_at <= now:
                self.pending.append(_QueueEntry(point_id, attempt))
            else:
                still_waiting.append((ready_at, point_id, attempt))
        self.waiting = still_waiting

    def _next_ready_delta(self) -> Optional[float]:
        if not self.waiting:
            return None
        return max(0.0, min(entry[0] for entry in self.waiting) - wall_clock())

    # -- outcomes --------------------------------------------------------------

    def _conclude_result(
        self,
        point: PointRecord,
        attempt: int,
        artifact: dict,
        wall_time_sec: float,
    ) -> None:
        path_suffix = write_artifact(self.json_dir, artifact)
        if artifact.get("ok"):
            event = "done"
            point.status = "done"
            self.recorder.inc("herd.done")
        else:
            # The driver raised deterministically: retrying replays the
            # same exception, so the failure is terminal, not transient.
            event = "failed"
            point.status = "failed"
            point.last_error = artifact.get("error")
            self.recorder.inc("herd.failed")
        record = {
            "event": event,
            "point": point.point_id,
            "attempt": attempt,
            "wall_time_sec": round(wall_time_sec, 3),
        }
        if artifact.get("error"):
            record["error"] = artifact["error"]
        self.journal.append(record)
        point.history.append(
            {
                "attempt": attempt,
                "outcome": event,
                "wall_time_sec": round(wall_time_sec, 3),
            }
        )
        label = "done" if event == "done" else "FAILED"
        self.out.write(
            f"[{label}] {point.name} (attempt {attempt}, "
            f"{wall_time_sec:.1f}s)\n"
        )
        del path_suffix  # path only matters to the artifact reader

    def _conclude_transient(
        self,
        point: PointRecord,
        attempt: int,
        kind: str,
        error: str,
        wall_time_sec: float,
    ) -> None:
        self.recorder.inc(
            "herd.crashes" if kind == "crash" else "herd.timeouts"
        )
        self.journal.append(
            {
                "event": kind,
                "point": point.point_id,
                "attempt": attempt,
                "error": error,
                "wall_time_sec": round(wall_time_sec, 3),
            }
        )
        point.history.append(
            {"attempt": attempt, "outcome": kind, "error": error}
        )
        point.last_error = error
        if attempt >= self.config.max_attempts:
            self._quarantine(point, error)
            return
        delay_sec = self.config.backoff.delay_sec(
            self.config.seed, point.point_id, attempt
        )
        next_attempt = attempt + 1
        self.journal.append(
            {
                "event": "retry",
                "point": point.point_id,
                "attempt": next_attempt,
                "delay_sec": round(delay_sec, 6),
            }
        )
        self.recorder.inc("herd.retries")
        point.status = "retry_scheduled"
        self.waiting.append((wall_clock() + delay_sec, point.point_id, next_attempt))
        self.out.write(
            f"[{kind}] {point.name} (attempt {attempt}): {error} — "
            f"retry {next_attempt}/{self.config.max_attempts} in "
            f"{delay_sec:.2f}s\n"
        )

    def _quarantine(self, point: PointRecord, error: str) -> None:
        point.status = "quarantined"
        stable_error = f"quarantined: {error}"
        self.journal.append(
            {
                "event": "quarantined",
                "point": point.point_id,
                "attempts": point.attempts_used,
                "error": stable_error,
            }
        )
        self.recorder.inc("herd.quarantined")
        description = ""
        try:
            description = resolve(self.tokens[point.point_id]).description
        except (KeyError, ScenarioError):
            description = f"unresolvable experiment {point.name!r}"
        write_artifact(
            self.json_dir,
            failure_artifact(point.name, description, stable_error, 0.0),
        )
        self.out.write(
            f"[QUARANTINED] {point.name} after "
            f"{point.attempts_used} attempts: {error}\n"
        )

    def _handle_outcome(self, outcome) -> None:
        point = self.state.points[outcome.key]
        attempt = self.in_flight.pop(outcome.key)
        if outcome.kind == "result":
            self._conclude_result(
                point, attempt, outcome.result, outcome.wall_time_sec
            )
        elif outcome.kind == "timeout":
            error = (
                f"TimeoutError: watchdog killed '{point.name}' after "
                f"{self.config.timeout_sec:g}s"
            )
            self._conclude_transient(
                point, attempt, "timeout", error, outcome.wall_time_sec
            )
        else:
            exitcode = outcome.exitcode if outcome.exitcode is not None else "?"
            error = (
                f"ChildCrash: worker for '{point.name}' died without "
                f"reporting (exit code {exitcode})"
            )
            self._conclude_transient(
                point, attempt, "crash", error, outcome.wall_time_sec
            )

    # -- main loop -------------------------------------------------------------

    def drive(self) -> None:
        pool = SupervisedPool(
            target=_run_one_into,
            jobs=self.config.jobs,
            timeout_sec=self.config.timeout_sec,
            grace_sec=self.config.grace_sec,
        )
        try:
            while self.pending or self.waiting or pool.active:
                self._promote_ready()
                while pool.free_slots > 0 and self.pending:
                    entry = self.pending.pop(0)
                    point = self.state.points[entry.point_id]
                    self.journal.append(
                        {
                            "event": "started",
                            "point": entry.point_id,
                            "attempt": entry.attempt,
                        }
                    )
                    self.recorder.inc("herd.attempts")
                    point.status = "running"
                    point.attempts_used = max(point.attempts_used, entry.attempt)
                    self.in_flight[entry.point_id] = entry.attempt
                    pool.launch(entry.point_id, self.tokens[entry.point_id])
                if pool.active:
                    for outcome in pool.wait(0.25):
                        self._handle_outcome(outcome)
                elif self.waiting:
                    delta = self._next_ready_delta()
                    if delta:
                        time.sleep(min(delta, 0.05))
        finally:
            pool.shutdown()


# -- entry points ------------------------------------------------------------


def _open_state(
    points: List[HerdPoint], config: HerdConfig, json_dir: str
) -> Tuple[HerdState, JournalWriter]:
    """Create a fresh journal + state for ``herd run``."""
    writer = JournalWriter(journal_path(json_dir))
    header = {
        "schema": JOURNAL_SCHEMA,
        "event": "campaign",
        "created_wall_sec": round(wall_clock(), 3),
        "jobs": config.jobs,
        "timeout_sec": config.timeout_sec,
        "max_attempts": config.max_attempts,
        "seed": config.seed,
        "backoff": config.backoff.to_dict(),
        "points": [
            {"id": point.point_id, "name": point.name, "token": point.token}
            for point in points
        ],
    }
    writer.append(header)
    state = HerdState(header=header, points={}, clean=True)
    for point in points:
        state.points[point.point_id] = PointRecord(
            point_id=point.point_id, name=point.name
        )
    return state, writer


def _drive_session(
    state: HerdState,
    enqueue: List[PointRecord],
    json_dir: str,
    config: HerdConfig,
    writer: JournalWriter,
    out: IO[str],
) -> int:
    """Shared tail of run/resume: drive, merge, report, exit code."""
    recorder = MetricsRecorder()
    tokens = {
        entry["id"]: entry["token"] for entry in state.header.get("points", [])
    }
    driver = _Driver(state, tokens, json_dir, config, writer, recorder, out)
    with recording(recorder):
        for point in enqueue:
            driver.enqueue(point)
        driver.drive()
    summary = merge_state(state, json_dir, recorder.counters)
    path = write_summary(summary, json_dir)
    out.write(f"herd summary written to {path}\n")
    counts = state.counts()
    out.write(
        f"herd: {counts['done']} done, {counts['failed']} failed, "
        f"{counts['quarantined']} quarantined "
        f"(of {len(state.points)} points)\n"
    )
    bad = counts["failed"] + counts["quarantined"]
    incomplete = len(state.points) - counts["done"] - bad
    return 1 if bad or incomplete else 0


def run_herd(
    names: Sequence[str],
    json_dir: str,
    config: Optional[HerdConfig] = None,
    out: IO[str] = sys.stdout,
) -> int:
    """``repro herd run``: fresh campaign into ``json_dir``.

    Refuses to clobber an existing journal — that is what ``resume`` is
    for.  Returns the process exit code (0 = every point done).
    """
    config = config if config is not None else HerdConfig()
    try:
        existing = replay_journal(journal_path(json_dir))
    except JournalError:
        existing = None
    if existing is not None:
        raise HerdError(
            f"{json_dir} already holds a herd journal; use 'repro herd "
            f"resume {json_dir}' (or pick a fresh directory)"
        )
    points = expand_points(names)
    state, writer = _open_state(points, config, json_dir)
    out.write(
        f"== herd: {len(points)} points, jobs {config.jobs}, "
        f"max attempts {config.max_attempts} ==\n"
    )
    with writer:
        return _drive_session(
            state, list(state.points.values()), json_dir, config, writer, out
        )


def _config_from_header(header: Dict[str, object], jobs: Optional[int]) -> HerdConfig:
    timeout = header.get("timeout_sec")
    return HerdConfig(
        jobs=int(jobs if jobs is not None else header.get("jobs", 1) or 1),
        timeout_sec=float(timeout) if timeout is not None else None,  # type: ignore[arg-type]
        max_attempts=int(header.get("max_attempts", 3) or 3),  # type: ignore[call-overload]
        backoff=BackoffPolicy.from_dict(
            dict(header.get("backoff", {}) or {})  # type: ignore[call-overload]
        ),
        seed=int(header.get("seed", 0) or 0),  # type: ignore[call-overload]
    )


def resume_herd(
    json_dir: str,
    jobs: Optional[int] = None,
    out: IO[str] = sys.stdout,
) -> int:
    """``repro herd resume``: pick a journalled campaign back up.

    Completed points are skipped by content-keyed id; in-flight and
    retry-eligible points are re-enqueued (orphaned attempts count
    against the budget — a point whose budget is already spent is
    quarantined right here rather than re-run).  Orchestration knobs
    come from the journal header; ``jobs`` may be overridden.
    """
    state = replay_journal(journal_path(json_dir))
    config = _config_from_header(state.header, jobs)
    writer = JournalWriter(journal_path(json_dir))
    recorder_skips = 0
    enqueue: List[PointRecord] = []
    quarantine_now: List[PointRecord] = []
    for point in state.points.values():
        if point.status == "done":
            recorder_skips += 1
        elif point.status in ("failed", "quarantined"):
            continue
        elif point.attempts_used >= config.max_attempts:
            quarantine_now.append(point)
        else:
            enqueue.append(point)
    out.write(
        f"== herd resume: {len(state.points)} points "
        f"({recorder_skips} already done, {len(enqueue)} re-enqueued, "
        f"jobs {config.jobs}) ==\n"
    )
    with writer:
        writer.append(
            {
                "event": "resumed",
                "jobs": config.jobs,
                "skipped_done": recorder_skips,
            }
        )
        state.resumes += 1
        recorder = MetricsRecorder()
        tokens = {
            entry["id"]: entry["token"]
            for entry in state.header.get("points", [])
        }
        driver = _Driver(
            state, tokens, json_dir, config, writer, recorder, out
        )
        recorder.inc("herd.resume.skips", recorder_skips)
        with recording(recorder):
            for point in quarantine_now:
                error = point.last_error or "attempt budget exhausted"
                driver._quarantine(point, error)
            for point in enqueue:
                driver.enqueue(point)
            driver.drive()
        summary = merge_state(state, json_dir, recorder.counters)
        path = write_summary(summary, json_dir)
        out.write(f"herd summary written to {path}\n")
        counts = state.counts()
        out.write(
            f"herd: {counts['done']} done, {counts['failed']} failed, "
            f"{counts['quarantined']} quarantined "
            f"(of {len(state.points)} points)\n"
        )
        bad = counts["failed"] + counts["quarantined"]
        incomplete = len(state.points) - counts["done"] - bad
        return 1 if bad or incomplete else 0


def herd_status(json_dir: str, out: IO[str] = sys.stdout) -> int:
    """``repro herd status``: replay the journal, print queue state."""
    try:
        state = replay_journal(journal_path(json_dir))
    except JournalError as exc:
        sys.stderr.write(f"repro herd: error: {exc}\n")
        return 2
    counts = state.counts()
    tail = "" if state.clean else " (journal ends mid-write: crashed run)"
    out.write(
        f"herd campaign in {json_dir}: {len(state.points)} points, "
        f"{state.resumes} resume(s){tail}\n"
    )
    for status in (
        "done",
        "failed",
        "quarantined",
        "running",
        "retry_scheduled",
        "attempt_failed",
        "pending",
    ):
        if counts[status]:
            out.write(f"  {status:15s} {counts[status]}\n")
    for point in state.points.values():
        if point.status in ("failed", "quarantined"):
            out.write(
                f"  [{point.status}] {point.name} "
                f"(attempts {point.attempts_used}): {point.last_error}\n"
            )
    return 0


__all__ = [
    "CampaignError",
    "HerdConfig",
    "HerdError",
    "HerdPoint",
    "expand_points",
    "herd_status",
    "point_for",
    "resume_herd",
    "run_herd",
]
