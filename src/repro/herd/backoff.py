"""Retry backoff with deterministic, per-(point, attempt) jitter.

Transient failures (a crashed or hung worker) are retried under
exponential backoff.  Naive jitter (``random.random()``) would make a
resumed campaign schedule retries differently from an uninterrupted one;
here the jitter for attempt *k* of point *p* is a pure function of
``(seed, p, k)`` — drawn from a :mod:`repro.simulation.rng` stream whose
seed is derived from those three values — so kill + resume replays the
exact same delay sequence (kyotolint S-rules: the one stream name,
``herd.backoff``, lives only in this module).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.rng import derive_seed, seeded_stream


class BackoffError(ValueError):
    """Raised on invalid backoff configuration."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base * multiplier**(attempt-1)``, capped."""

    base_delay_sec: float = 0.5
    multiplier: float = 2.0
    max_delay_sec: float = 30.0
    #: Jitter half-width as a fraction of the raw delay (0.1 = +/-10%).
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.base_delay_sec < 0.0:
            raise BackoffError(
                f"base_delay_sec must be >= 0, got {self.base_delay_sec}"
            )
        if self.multiplier < 1.0:
            raise BackoffError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_sec < self.base_delay_sec:
            raise BackoffError(
                f"max_delay_sec must be >= base_delay_sec, got "
                f"{self.max_delay_sec} < {self.base_delay_sec}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise BackoffError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}"
            )

    def raw_delay_sec(self, attempt: int) -> float:
        """Unjittered delay before retrying after failed attempt ``attempt``."""
        if attempt < 1:
            raise BackoffError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.max_delay_sec,
            self.base_delay_sec * self.multiplier ** (attempt - 1),
        )

    def delay_sec(self, seed: int, point_id: str, attempt: int) -> float:
        """Jittered delay — a pure function of ``(seed, point_id, attempt)``.

        The jitter stream is re-derived from scratch on every call, so a
        resumed orchestrator computes the same delay an uninterrupted
        one would have, regardless of how many draws happened before the
        crash.
        """
        raw = self.raw_delay_sec(attempt)
        if self.jitter_frac == 0.0 or raw == 0.0:
            return raw
        stream = seeded_stream(
            derive_seed(seed, f"{point_id}:{attempt}"), "herd.backoff"
        )
        jitter = 1.0 + self.jitter_frac * (2.0 * stream.random() - 1.0)
        return raw * jitter

    def to_dict(self) -> dict:
        """JSON shape recorded in the journal header (lossless)."""
        return {
            "base_delay_sec": self.base_delay_sec,
            "multiplier": self.multiplier,
            "max_delay_sec": self.max_delay_sec,
            "jitter_frac": self.jitter_frac,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BackoffPolicy":
        return cls(
            base_delay_sec=float(data.get("base_delay_sec", 0.5)),
            multiplier=float(data.get("multiplier", 2.0)),
            max_delay_sec=float(data.get("max_delay_sec", 30.0)),
            jitter_frac=float(data.get("jitter_frac", 0.1)),
        )
