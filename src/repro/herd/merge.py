"""Merge a herd run into the ``repro.campaign/1`` summary document.

The merged document is the ordinary campaign summary
(:func:`repro.experiments.campaign.aggregate_artifacts` over the
artifact directory) extended with a ``herd`` section: per-point attempt
histories, the quarantined points, resume count and the ``herd.*``
telemetry counters.

The herd's central invariant — kill + resume converges on the same
campaign result as an uninterrupted run — is *modulo* wall times and
attempt bookkeeping, which legitimately differ between the two
histories.  :func:`normalized_for_comparison` strips exactly those
fields, and nothing else, so the chaos tests (and the CI smoke job) can
assert byte-identical normalized documents.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping

from repro.experiments.campaign import aggregate_artifacts, scan_artifacts
from repro.util import atomic_write_json

from .journal import JOURNAL_SCHEMA, HerdState

#: Filename of the merged summary inside a herd campaign directory.
SUMMARY_FILENAME = "herd-summary.json"


def summary_path(json_dir: str) -> str:
    """The merged summary file of a herd campaign directory."""
    return os.path.join(json_dir, SUMMARY_FILENAME)


def merge_state(
    state: HerdState,
    json_dir: str,
    counters: Mapping[str, float],
) -> Dict[str, Any]:
    """Aggregate ``json_dir`` artifacts + journal state into one document."""
    artifacts, corrupt = scan_artifacts(json_dir)
    summary = aggregate_artifacts(artifacts)
    if corrupt:
        summary["corrupt_artifacts"] = corrupt
    points: List[Dict[str, Any]] = []
    quarantined: List[str] = []
    for record in state.points.values():
        points.append(
            {
                "id": record.point_id,
                "name": record.name,
                "status": record.status,
                "attempts": record.attempts_used,
                "history": record.history,
                "error": record.last_error,
            }
        )
        if record.status == "quarantined":
            quarantined.append(record.name)
    summary["herd"] = {
        "schema": JOURNAL_SCHEMA,
        "resumes": state.resumes,
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("herd.")
        },
        "points": points,
        "quarantined": quarantined,
    }
    return summary


def write_summary(summary: Dict[str, Any], json_dir: str) -> str:
    """Write the merged summary atomically; returns the path written."""
    return atomic_write_json(summary_path(json_dir), summary)


def normalized_for_comparison(summary: Mapping[str, Any]) -> Dict[str, Any]:
    """The crash-equivalence projection of a merged summary.

    Keeps everything deterministic across kill/resume histories —
    experiment results, report hashes, errors, per-point terminal
    statuses, the quarantined set — and drops exactly the fields an
    interruption legitimately perturbs: wall times, attempt counts and
    histories, resume count and the ``herd.*`` counters.
    """
    experiments = [
        {
            key: value
            for key, value in entry.items()
            if key != "wall_time_sec"
        }
        for entry in summary.get("experiments", [])
    ]
    herd = summary.get("herd", {})
    points = [
        {
            "id": entry.get("id"),
            "name": entry.get("name"),
            "status": entry.get("status"),
        }
        for entry in herd.get("points", [])
    ]
    normalized: Dict[str, Any] = {
        "schema": summary.get("schema"),
        "num_experiments": summary.get("num_experiments"),
        "num_failed": summary.get("num_failed"),
        "failed": summary.get("failed"),
        "experiments": experiments,
        "herd": {
            "schema": herd.get("schema"),
            "points": points,
            "quarantined": herd.get("quarantined"),
        },
    }
    if summary.get("corrupt_artifacts"):
        normalized["corrupt_artifacts"] = summary["corrupt_artifacts"]
    return normalized


__all__ = [
    "SUMMARY_FILENAME",
    "merge_state",
    "normalized_for_comparison",
    "summary_path",
    "write_summary",
]
