"""Durable append-only campaign journal (schema ``repro.herd/1``).

The herd orchestrator records every point's lifecycle in one JSONL file
(``journal.jsonl`` inside the campaign's artifact directory).  Each line
is a self-contained JSON record appended with a single ``write`` call
followed by flush + fsync, so a crash — of the orchestrator or the whole
host — can only ever leave a *partial last line*.  Recovery therefore
never needs a repair step: :func:`scan_journal` parses line by line and
stops at the first undecodable record, and :func:`replay_journal` folds
the surviving prefix into a consistent queue state (done points stay
done, an in-flight attempt becomes ``orphaned``, retry-eligible points
come back as pending).

Lifecycle of one point::

    enqueued -> started attempt=1 -> done
                                  -> failed   (deterministic; terminal)
                                  -> crash | timeout  (transient)
                                       -> retry -> started attempt=2 ...
                                       -> quarantined (budget spent)

Event order within the file is the orchestrator's decision order, which
makes the journal a replayable trace as well as a recovery log.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Schema identifier of one journal record (first field of every line).
JOURNAL_SCHEMA = "repro.herd/1"

#: Journal filename inside a herd campaign directory.
JOURNAL_FILENAME = "journal.jsonl"

#: Terminal point statuses — never re-enqueued by resume.
TERMINAL_STATUSES = ("done", "failed", "quarantined")

#: Statuses resume re-enqueues (the point never reached a terminal event).
RESUMABLE_STATUSES = ("pending", "running", "attempt_failed", "retry_scheduled")

#: Transient outcome kinds that are retried under backoff.
TRANSIENT_KINDS = ("crash", "timeout")


class JournalError(ValueError):
    """Raised on unreadable journals or structurally invalid replays."""


def journal_path(json_dir: str) -> str:
    """The journal file of a herd campaign directory."""
    return os.path.join(json_dir, JOURNAL_FILENAME)


class JournalWriter:
    """Append-only JSONL writer with atomic, durable appends.

    One record is one ``write()`` of a complete line; the handle is
    flushed and fsynced before :meth:`append` returns, so a record
    either fully exists on disk or (after a crash mid-write) is a
    partial *last* line that recovery skips.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record durably."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def scan_journal(path: str) -> Tuple[List[Dict[str, Any]], bool]:
    """Parse a journal into ``(records, clean)``.

    ``clean`` is False when the file ends in a partial/corrupt line (the
    signature of a crash mid-append); scanning stops there, so the
    returned records are always a valid prefix.  A missing file raises
    :class:`JournalError` — an empty campaign directory is an error, a
    truncated journal is not.
    """
    if not os.path.isfile(path):
        raise JournalError(f"no such journal: {path}")
    records: List[Dict[str, Any]] = []
    clean = True
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                clean = False
                break
            if not isinstance(record, dict) or "event" not in record:
                clean = False
                break
            records.append(record)
    return records, clean


@dataclass
class PointRecord:
    """Replayed lifecycle state of one campaign point."""

    point_id: str
    name: str
    #: pending | running | attempt_failed | retry_scheduled | done |
    #: failed | quarantined
    status: str = "pending"
    #: Attempts started so far (an orphaned in-flight attempt counts).
    attempts_used: int = 0
    #: One entry per concluded attempt: {"attempt", "outcome", ...}.
    history: List[Dict[str, Any]] = field(default_factory=list)
    last_error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES


@dataclass
class HerdState:
    """Everything a resume (or ``herd status``) needs from the journal."""

    header: Dict[str, Any]
    #: point_id -> record, in campaign (grid) order.
    points: Dict[str, PointRecord]
    #: Number of ``resumed`` markers seen (0 for an uninterrupted run).
    resumes: int = 0
    #: False when the journal ended in a partial line (crash signature).
    clean: bool = True

    def counts(self) -> Dict[str, int]:
        """Points per status, every known status always present."""
        counts = {
            status: 0
            for status in (
                "pending",
                "running",
                "attempt_failed",
                "retry_scheduled",
                "done",
                "failed",
                "quarantined",
            )
        }
        for record in self.points.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def resumable(self) -> List[PointRecord]:
        """Points a resume must re-enqueue, in campaign order."""
        return [
            record
            for record in self.points.values()
            if record.status in RESUMABLE_STATUSES
        ]


def replay_records(records: List[Dict[str, Any]], clean: bool = True) -> HerdState:
    """Fold scanned journal records into a consistent :class:`HerdState`.

    The fold is total: any *prefix* of a valid journal replays without
    error (the crash-recovery property pinned by the truncation tests).
    An in-flight ``started`` with no concluding event is closed as an
    ``orphaned`` attempt — it consumed one attempt from the budget, so a
    poison point cannot dodge quarantine by killing the orchestrator.
    """
    if not records:
        raise JournalError("journal holds no complete records")
    header = records[0]
    if header.get("event") != "campaign" or header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"journal does not start with a {JOURNAL_SCHEMA} campaign header"
        )
    state = HerdState(header=header, points={}, clean=clean)
    for entry in header.get("points", []):
        state.points[entry["id"]] = PointRecord(
            point_id=entry["id"], name=entry["name"]
        )
    for record in records[1:]:
        event = record.get("event")
        if event == "resumed":
            state.resumes += 1
            continue
        point = state.points.get(record.get("point", ""))
        if point is None:
            continue  # unknown point id: stale record from a changed grid
        if event == "enqueued":
            if not point.terminal:
                point.status = "pending"
        elif event == "started":
            point.status = "running"
            point.attempts_used = max(
                point.attempts_used, int(record.get("attempt", 1))
            )
        elif event == "done":
            point.status = "done"
            point.history.append(_attempt_entry(record, "done"))
        elif event == "failed":
            point.status = "failed"
            point.last_error = record.get("error")
            point.history.append(_attempt_entry(record, "failed"))
        elif event in TRANSIENT_KINDS:
            point.status = "attempt_failed"
            point.last_error = record.get("error")
            point.history.append(_attempt_entry(record, str(event)))
        elif event == "retry":
            point.status = "retry_scheduled"
        elif event == "quarantined":
            point.status = "quarantined"
            point.last_error = record.get("error", point.last_error)
    for point in state.points.values():
        if point.status == "running":
            # The journal ends mid-attempt: the orchestrator died while
            # this point was in flight.  The attempt is spent.
            point.history.append(
                {"attempt": point.attempts_used, "outcome": "orphaned"}
            )
    return state


def _attempt_entry(record: Dict[str, Any], outcome: str) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "attempt": int(record.get("attempt", 0)),
        "outcome": outcome,
    }
    if record.get("wall_time_sec") is not None:
        entry["wall_time_sec"] = record["wall_time_sec"]
    if record.get("error") is not None:
        entry["error"] = record["error"]
    return entry


def replay_journal(path: str) -> HerdState:
    """Scan + replay a journal file into a :class:`HerdState`."""
    records, clean = scan_journal(path)
    return replay_records(records, clean)
