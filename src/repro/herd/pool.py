"""Concurrently supervised watchdog workers.

Before the herd, the campaign runner had to choose: parallel (a
``multiprocessing.Pool``, no watchdog — a hung driver wedges a worker
slot forever) or supervised (the ``--timeout-sec`` watchdog, strictly
serial).  :class:`SupervisedPool` gives both at once: up to ``jobs``
child processes run concurrently, each individually supervised — its
result pipe, its process sentinel and its deadline are all watched from
one :func:`multiprocessing.connection.wait` loop — and a child that
hangs or dies reports as a ``timeout`` / ``crash`` outcome without
stalling its siblings.

Termination escalates: ``terminate()`` (SIGTERM), a bounded grace
period, then ``kill()`` (SIGKILL) — a child that ignores or blocks
SIGTERM cannot wedge the campaign (see :func:`stop_child`).

The pool is deliberately generic — the child entry point is injected at
construction — so :mod:`repro.experiments.campaign` can drive it for
``repro run --jobs N --timeout-sec S`` without an import cycle.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, NamedTuple, Optional

from repro.util import elapsed_since, wall_clock

#: Default SIGTERM -> SIGKILL escalation grace period.
DEFAULT_GRACE_SEC = 5.0

#: Upper bound on one supervision wait, so deadlines are checked promptly.
_MAX_WAIT_SEC = 0.25


class PoolError(ValueError):
    """Raised on invalid pool configuration or misuse (no free slot)."""


class WorkerOutcome(NamedTuple):
    """One finished supervision: result received, child died, or timed out."""

    key: str
    #: ``result`` | ``crash`` | ``timeout``
    kind: str
    #: The object the child sent back (``result`` outcomes only).
    result: Optional[Any]
    wall_time_sec: float
    exitcode: Optional[int]


def stop_child(process: multiprocessing.Process, grace_sec: float) -> None:
    """Stop ``process``: SIGTERM, wait ``grace_sec``, escalate to SIGKILL.

    ``terminate()`` alone is not enough — a child that installed a
    SIGTERM handler (or is stuck in uninterruptible state) never exits,
    and the old watchdog's unconditional ``join()`` then blocked the
    whole campaign.  The unbounded ``join()`` here is safe: SIGKILL
    cannot be caught.
    """
    if process.is_alive():
        process.terminate()
        process.join(grace_sec)
        if process.is_alive():
            process.kill()
    process.join()


class _Worker:
    """One running supervised child."""

    def __init__(
        self,
        key: str,
        process: multiprocessing.Process,
        receiver: "multiprocessing.connection.Connection",
        deadline_sec: Optional[float],
    ) -> None:
        self.key = key
        self.process = process
        self.receiver = receiver
        self.started = wall_clock()
        #: Absolute wall-clock deadline, or None for no timeout.
        self.deadline = (
            self.started + deadline_sec if deadline_sec is not None else None
        )


class SupervisedPool:
    """Up to ``jobs`` concurrently supervised watchdog children.

    ``target`` is the child entry point, called as ``target(payload,
    sender_connection)`` in the child process; it must be a module-level
    function (kyotolint C001: workers pickle their payload under spawn).
    The child reports by sending exactly one object on the connection.
    """

    def __init__(
        self,
        target: Callable[..., None],
        jobs: int,
        timeout_sec: Optional[float] = None,
        grace_sec: float = DEFAULT_GRACE_SEC,
    ) -> None:
        if jobs < 1:
            raise PoolError(f"jobs must be >= 1, got {jobs}")
        if timeout_sec is not None and timeout_sec <= 0:
            raise PoolError(f"timeout_sec must be positive, got {timeout_sec}")
        if grace_sec <= 0:
            raise PoolError(f"grace_sec must be positive, got {grace_sec}")
        self._target = target
        self.jobs = jobs
        self.timeout_sec = timeout_sec
        self.grace_sec = grace_sec
        self._running: Dict[str, _Worker] = {}

    # -- slots -----------------------------------------------------------------

    @property
    def active(self) -> int:
        """Number of children currently supervised."""
        return len(self._running)

    @property
    def free_slots(self) -> int:
        return self.jobs - len(self._running)

    def launch(self, key: str, payload: Any) -> None:
        """Start one supervised child computing ``payload``.

        ``key`` is an opaque caller-chosen id returned on the outcome;
        launching with a key already in flight, or with no free slot, is
        a caller bug and raises.
        """
        if self.free_slots <= 0:
            raise PoolError(f"no free worker slot for {key!r}")
        if key in self._running:
            raise PoolError(f"key {key!r} is already in flight")
        receiver, sender = multiprocessing.Pipe(duplex=False)
        # C002: the injected target (campaign run_one) installs the
        # per-process ambient telemetry recorder by design; nothing
        # flows back but the one pickled result object.
        process = multiprocessing.Process(  # kyotolint: disable=C002
            target=self._target, args=(payload, sender)
        )
        process.daemon = True
        process.start()
        sender.close()
        self._running[key] = _Worker(key, process, receiver, self.timeout_sec)

    # -- supervision -----------------------------------------------------------

    def wait(self, timeout_sec: float) -> List[WorkerOutcome]:
        """Supervise for up to ``timeout_sec``; return concluded outcomes.

        Blocks until at least one child reports, dies or times out — or
        until ``timeout_sec`` elapses — then sweeps every running child
        once.  Returns possibly-empty list; call again to keep
        supervising.
        """
        if not self._running:
            return []
        wait_sec = max(0.0, min(timeout_sec, _MAX_WAIT_SEC, self._nearest_deadline()))
        handles: List[Any] = []
        for worker in self._running.values():
            handles.append(worker.receiver)
            handles.append(worker.process.sentinel)
        _connection_wait(handles, wait_sec)
        outcomes: List[WorkerOutcome] = []
        for key in list(self._running):
            outcome = self._sweep_one(self._running[key])
            if outcome is not None:
                del self._running[key]
                outcomes.append(outcome)
        return outcomes

    def _nearest_deadline(self) -> float:
        deltas = [
            worker.deadline - wall_clock()
            for worker in self._running.values()
            if worker.deadline is not None
        ]
        if not deltas:
            return _MAX_WAIT_SEC
        return max(0.0, min(deltas))

    def _sweep_one(self, worker: _Worker) -> Optional[WorkerOutcome]:
        """Conclude one worker if it reported, died or blew its deadline."""
        if worker.receiver.poll():
            try:
                result = worker.receiver.recv()
            except EOFError:
                return self._conclude(worker, "crash", None)
            return self._conclude(worker, "result", result)
        if not worker.process.is_alive():
            return self._conclude(worker, "crash", None)
        if worker.deadline is not None and wall_clock() >= worker.deadline:
            return self._conclude(worker, "timeout", None)
        return None

    def _conclude(
        self, worker: _Worker, kind: str, result: Optional[Any]
    ) -> WorkerOutcome:
        worker.receiver.close()
        stop_child(worker.process, self.grace_sec)
        return WorkerOutcome(
            key=worker.key,
            kind=kind,
            result=result,
            wall_time_sec=elapsed_since(worker.started),
            exitcode=worker.process.exitcode,
        )

    def shutdown(self) -> None:
        """Stop every running child (escalating) and drop the slots."""
        for key in list(self._running):
            worker = self._running.pop(key)
            worker.receiver.close()
            stop_child(worker.process, self.grace_sec)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
