"""Equation 1 of the paper.

``llc_cap_act = llc_misses * cpu_freq_khz / unhalted_core_cycles``

With the frequency in kHz, ``freq_khz`` equals the number of cycles per
millisecond, so the quantity is **LLC misses per millisecond of unhalted
execution** — the paper's pollution level.  Section 4.2 shows this beats
raw miss counts (LLCM) as an aggressiveness indicator because it accounts
for how fast the VM actually runs: a VM with huge misses per instruction
but a terrible IPC pollutes more slowly than its miss volume suggests.
"""

from __future__ import annotations

import math
from typing import Optional


def llc_cap_act(
    llc_misses: float, unhalted_core_cycles: float, cpu_freq_khz: int
) -> float:
    """Pollution level (misses/ms) from PMC readings — the paper's eq. 1.

    Returns 0.0 when the VM did not run (zero unhalted cycles), matching
    the scheduler's behaviour of not debiting idle VMs.
    """
    if llc_misses < 0 or unhalted_core_cycles < 0:
        raise ValueError(
            f"PMC readings cannot be negative: misses={llc_misses}, "
            f"cycles={unhalted_core_cycles}"
        )
    if cpu_freq_khz <= 0:
        raise ValueError(f"cpu_freq_khz must be positive, got {cpu_freq_khz}")
    if unhalted_core_cycles == 0:
        return 0.0
    return llc_misses * cpu_freq_khz / unhalted_core_cycles


def max_plausible_rate(cpu_freq_khz: int, num_vcpus: int = 1) -> float:
    """Physical ceiling on llc_cap_act for a VM.

    A core cannot miss the LLC more than once per cycle, so misses/ms is
    bounded by cycles/ms — i.e. ``freq_khz`` — per vCPU.  Measured rates
    above this ceiling are counter-wrap or garbage artifacts, never real
    pollution (a naive 48-bit wrap inflates a delta by ~2**48, orders of
    magnitude past this bound).
    """
    if cpu_freq_khz <= 0:
        raise ValueError(f"cpu_freq_khz must be positive, got {cpu_freq_khz}")
    if num_vcpus <= 0:
        raise ValueError(f"num_vcpus must be positive, got {num_vcpus}")
    return float(cpu_freq_khz) * num_vcpus


def is_plausible_rate(
    value: float,
    last_good: Optional[float] = None,
    spike_factor: float = 50.0,
    ceiling: Optional[float] = None,
) -> bool:
    """Sample plausibility guard for the monitoring path.

    A measured llc_cap_act is implausible when it is non-finite,
    negative, above the physical ``ceiling``
    (:func:`max_plausible_rate`), or — once a trustworthy history
    exists — more than ``spike_factor`` times the ``last_good`` EWMA
    (pollution is a smooth per-period rate; a 50x jump between adjacent
    monitoring periods is a measurement artifact, not a workload).
    """
    if spike_factor <= 1.0:
        raise ValueError(f"spike_factor must be > 1, got {spike_factor}")
    if not math.isfinite(value) or value < 0.0:
        return False
    if ceiling is not None and value > ceiling:
        return False
    if last_good is not None and last_good > 0.0 and value > spike_factor * last_good:
        return False
    return True


def llcm_indicator(llc_misses: float, instructions: float) -> float:
    """The naive LLCM indicator Fig 4 compares against: misses per
    kilo-instruction of the sampling window."""
    if llc_misses < 0 or instructions < 0:
        raise ValueError(
            f"readings cannot be negative: misses={llc_misses}, "
            f"instructions={instructions}"
        )
    if instructions == 0:
        return 0.0
    return llc_misses * 1000.0 / instructions
