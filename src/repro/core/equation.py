"""Equation 1 of the paper.

``llc_cap_act = llc_misses * cpu_freq_khz / unhalted_core_cycles``

With the frequency in kHz, ``freq_khz`` equals the number of cycles per
millisecond, so the quantity is **LLC misses per millisecond of unhalted
execution** — the paper's pollution level.  Section 4.2 shows this beats
raw miss counts (LLCM) as an aggressiveness indicator because it accounts
for how fast the VM actually runs: a VM with huge misses per instruction
but a terrible IPC pollutes more slowly than its miss volume suggests.
"""

from __future__ import annotations


def llc_cap_act(
    llc_misses: float, unhalted_core_cycles: float, cpu_freq_khz: int
) -> float:
    """Pollution level (misses/ms) from PMC readings — the paper's eq. 1.

    Returns 0.0 when the VM did not run (zero unhalted cycles), matching
    the scheduler's behaviour of not debiting idle VMs.
    """
    if llc_misses < 0 or unhalted_core_cycles < 0:
        raise ValueError(
            f"PMC readings cannot be negative: misses={llc_misses}, "
            f"cycles={unhalted_core_cycles}"
        )
    if cpu_freq_khz <= 0:
        raise ValueError(f"cpu_freq_khz must be positive, got {cpu_freq_khz}")
    if unhalted_core_cycles == 0:
        return 0.0
    return llc_misses * cpu_freq_khz / unhalted_core_cycles


def llcm_indicator(llc_misses: float, instructions: float) -> float:
    """The naive LLCM indicator Fig 4 compares against: misses per
    kilo-instruction of the sampling window."""
    if llc_misses < 0 or instructions < 0:
        raise ValueError(
            f"readings cannot be negative: misses={llc_misses}, "
            f"instructions={instructions}"
        )
    if instructions == 0:
        return 0.0
    return llc_misses * 1000.0 / instructions
