"""The Kyoto enforcement engine.

Glue shared by every Kyoto scheduler (KS4Xen, KS4Linux, KS4Pisces): it
owns the per-VM :class:`~repro.core.pollution.PollutionAccount` objects,
drives the monitor at each monitoring period, debits quotas, and answers
the one question schedulers ask — *is this VM currently allowed to use
the processor?*

Keeping this logic in one place mirrors the paper's claim that the
approach "can easily be implemented within other systems": each port is
the scheduler-specific ~100 LOC that calls into this engine.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, TYPE_CHECKING

from repro.lint.contracts import InvariantChecker
from repro.telemetry import MetricsRecorder, current_recorder

from .monitor import DirectPmcMonitor, MonitorError, PollutionMonitor
from .pollution import PollutionAccount

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VirtualMachine


class KyotoEngine:
    """Pollution-permit accounting and enforcement."""

    def __init__(
        self,
        system: "VirtualizedSystem",
        monitor: Optional[PollutionMonitor] = None,
        quota_max_factor: float = 3.0,
        monitor_period_ticks: int = 1,
        recorder: Optional[MetricsRecorder] = None,
        quota_min_factor: Optional[float] = None,
        estimate_alpha: float = 0.3,
    ) -> None:
        if monitor_period_ticks <= 0:
            raise ValueError(
                f"monitor_period_ticks must be positive, got {monitor_period_ticks}"
            )
        if not 0.0 < estimate_alpha <= 1.0:
            raise ValueError(
                f"estimate_alpha must be in (0, 1], got {estimate_alpha}"
            )
        self.system = system
        self.monitor = monitor if monitor is not None else DirectPmcMonitor(system)
        self.quota_max_factor = quota_max_factor
        self.monitor_period_ticks = monitor_period_ticks
        #: Optional quota floor factor (see PollutionAccount): bounds how
        #: deep a VM's quota can sink, so no fault can park it forever.
        self.quota_min_factor = quota_min_factor
        #: Smoothing of the per-VM last-good estimate debited when the
        #: monitor produces nothing trustworthy for a period.
        self.estimate_alpha = estimate_alpha
        self.accounts: Dict[int, PollutionAccount] = {}
        #: Runtime contracts (docs/static_analysis.md): on under pytest,
        #: toggled by KYOTO_CONTRACTS, no-op otherwise.
        self.invariants = InvariantChecker("KyotoEngine")
        #: Telemetry hook (docs/telemetry.md): defaults to the system's
        #: recorder so one ``recording()`` scope covers the whole stack.
        if recorder is not None:
            self.recorder = recorder
        else:
            system_recorder = getattr(system, "recorder", None)
            self.recorder = (
                system_recorder if system_recorder is not None else current_recorder()
            )
        #: vm_id -> vm.cycles_run at its last monitoring sample; used to
        #: skip VMs that never executed during a period (see on_tick_end).
        self._cycles_at_last_sample: Dict[int, int] = {}
        #: vm_id -> EWMA of trusted measurements: the fallback debit when
        #: the monitor fails or lies (never a garbage reading).
        self._estimates: Dict[int, float] = {}
        #: Reentrancy guard: a monitor whose sampling window runs real
        #: ticks (socket dedication) re-enters the tick loop; monitoring
        #: must not recurse inside its own sampling window.
        self._sampling = False
        #: Plain-int mirrors of the failure-path telemetry counters.
        self.monitor_failures = 0
        self.implausible_samples = 0
        self.estimated_debits = 0

    # -- registration -------------------------------------------------------------

    def register_vm(self, vm: "VirtualMachine") -> Optional[PollutionAccount]:
        """Open an account for a VM with a booked llc_cap (None otherwise)."""
        if vm.llc_cap is None:
            return None
        if vm.vm_id not in self.accounts:
            self.accounts[vm.vm_id] = PollutionAccount(
                llc_cap=vm.llc_cap,
                quota_max_factor=self.quota_max_factor,
                quota_min_factor=self.quota_min_factor,
                recorder=self.recorder,
            )
        return self.accounts[vm.vm_id]

    def account_of(self, vm: "VirtualMachine") -> Optional[PollutionAccount]:
        """The VM's pollution account, or None if it is not managed."""
        return self.accounts.get(vm.vm_id)

    def retire_vm(self, vm: "VirtualMachine") -> None:
        """Close a VM's account with a final settlement debit.

        The inverse of :meth:`register_vm`, called while the VM is still
        live and measurable (before the hypervisor tears down its perfctr
        accounts).  Pollution produced since the last monitoring sample
        is debited now — without settlement, a VM could emit a burst and
        retire before the period boundary bills it, breaking the quota
        bank's conservation story.  Unmanaged VMs (no ``llc_cap``) have
        nothing to settle.
        """
        account = self.accounts.get(vm.vm_id)
        if account is not None:
            ran = vm.cycles_run != self._cycles_at_last_sample.get(vm.vm_id, 0)
            if ran:
                measured = self._sample_or_estimate(vm)
                account.debit(measured * self.monitor_period_ticks)
                self.recorder.inc("kyoto.settlement_debits")
            del self.accounts[vm.vm_id]
            self.recorder.inc("kyoto.accounts_retired")
        self._cycles_at_last_sample.pop(vm.vm_id, None)
        self._estimates.pop(vm.vm_id, None)

    # -- enforcement ----------------------------------------------------------------

    def is_parked(self, vm: "VirtualMachine") -> bool:
        """True when the VM's quota is negative (priority OVER)."""
        account = self.accounts.get(vm.vm_id)
        return account is not None and account.parked

    def on_tick_end(self, tick_index: int) -> None:
        """Run the monitoring period: measure and debit each managed VM.

        Only VMs that actually *executed* during the period are sampled:
        debiting a parked or blocked VM would append a zero-rate entry to
        its :class:`PollutionAccount`, diluting ``samples`` and
        ``mean_measured`` with periods in which the VM could not pollute
        at all.  Execution is detected by the VM's cumulative
        ``cycles_run`` moving since the previous sample.

        **Failure tolerance**: a monitor that raises
        :class:`~repro.core.monitor.MonitorError`, or returns a
        non-finite/negative value, never crashes the engine and never
        reaches an account.  The VM is debited the EWMA of its previous
        trusted measurements instead — billing degrades to the VM's own
        recent history, not to a garbage reading and not to an unbounded
        punishment (docs/faults.md).
        """
        if self._sampling:
            # A sampling window (socket dedication) is running real
            # ticks inside this very method; don't recurse.
            return
        if (tick_index + 1) % self.monitor_period_ticks != 0:
            return
        for vm in self.system.vms:
            account = self.accounts.get(vm.vm_id)
            if account is None:
                continue
            cycles_run = vm.cycles_run
            ran = cycles_run != self._cycles_at_last_sample.get(vm.vm_id, 0)
            self._cycles_at_last_sample[vm.vm_id] = cycles_run
            if not ran:
                self.recorder.inc("kyoto.idle_skips")
                continue
            measured = self._sample_or_estimate(vm)
            self.invariants.require(
                measured >= 0.0,
                "non-negative-sample",
                f"monitor {self.monitor.name} returned {measured} for "
                f"{vm.name}",
            )
            # llc_cap_act is a *rate* (misses/ms); the debit covers the
            # whole monitoring period so that the sustainable average
            # rate equals the booked llc_cap regardless of how often the
            # monitor runs.
            newly_punished = account.debit(measured * self.monitor_period_ticks)
            self.recorder.inc("kyoto.samples")
            if newly_punished:
                self.recorder.inc("kyoto.punishments")
            if self.recorder.enabled:
                self.recorder.record(
                    f"kyoto.quota.{vm.name}", tick_index, account.quota
                )

    def _sample_or_estimate(self, vm: "VirtualMachine") -> float:
        """One monitored sample, degraded to the EWMA estimate on failure.

        Successful, finite, non-negative samples update the per-VM EWMA;
        anything else (a :class:`MonitorError`, NaN, a negative reading)
        is replaced by the estimate — 0.0 for a VM that never produced a
        trustworthy sample, so an untrusted VM is never punished on
        garbage.
        """
        measured: Optional[float] = None
        self._sampling = True
        try:
            measured = self.monitor.sample(vm)
        except MonitorError:
            self.monitor_failures += 1
            self.recorder.inc("kyoto.monitor_failures")
        finally:
            self._sampling = False
        if measured is not None and not (
            math.isfinite(measured) and measured >= 0.0
        ):
            self.implausible_samples += 1
            self.recorder.inc("kyoto.implausible_samples")
            measured = None
        if measured is None:
            self.estimated_debits += 1
            self.recorder.inc("kyoto.estimated_debits")
            return self._estimates.get(vm.vm_id, 0.0)
        previous = self._estimates.get(vm.vm_id)
        self._estimates[vm.vm_id] = (
            measured
            if previous is None
            else self.estimate_alpha * measured
            + (1.0 - self.estimate_alpha) * previous
        )
        return measured

    def on_accounting(self, tick_index: int) -> None:
        """Time-slice boundary: every managed VM earns quota."""
        for account in self.accounts.values():
            account.refill(ticks=self.system.ticks_per_slice)
            self.invariants.require(
                account.quota <= account.quota_max + 1e-9,
                "quota-cap",
                f"quota {account.quota} exceeds cap {account.quota_max}",
            )

    # -- reporting ------------------------------------------------------------------

    def punishments(self, vm: "VirtualMachine") -> int:
        """Punishment count of a VM (0 if unmanaged)."""
        account = self.accounts.get(vm.vm_id)
        return 0 if account is None else account.punishments

    def quota(self, vm: "VirtualMachine") -> Optional[float]:
        """Current pollution quota (None if unmanaged)."""
        account = self.accounts.get(vm.vm_id)
        return None if account is None else account.quota
