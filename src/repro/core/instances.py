"""Instance-type catalog (Section 5 of the paper).

How does a user choose a VM's ``llc_cap``?  The paper's answer: the
provider attaches a pollution permit to each *instance type*, proportional
to the instance's memory-to-compute ratio — memory-optimised R3 instances
get a large permit, compute-optimised C3/C4 instances a small one.

This module provides an EC2-inspired catalog and the derivation rule, so
examples and tests can exercise the full provider-facing workflow: pick an
instance type → get vCPUs, memory *and* an llc_cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class InstanceType:
    """One bookable instance type.

    Attributes:
        name: e.g. ``"r3.large"``.
        vcpus: number of vCPUs.
        memory_gib: memory allocation.
        family: marketing family ("general", "compute", "memory").
    """

    name: str
    vcpus: int
    memory_gib: float
    family: str

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ValueError(f"{self.name}: vcpus must be positive")
        if self.memory_gib <= 0:
            raise ValueError(f"{self.name}: memory must be positive")

    @property
    def memory_per_vcpu_gib(self) -> float:
        return self.memory_gib / self.vcpus


#: EC2-inspired catalog (sizes from the generation the paper cites).
CATALOG: Dict[str, InstanceType] = {
    t.name: t
    for t in [
        InstanceType("m4.large", 2, 8.0, "general"),
        InstanceType("m4.xlarge", 4, 16.0, "general"),
        InstanceType("m4.2xlarge", 8, 32.0, "general"),
        InstanceType("c4.large", 2, 3.75, "compute"),
        InstanceType("c4.xlarge", 4, 7.5, "compute"),
        InstanceType("c4.2xlarge", 8, 15.0, "compute"),
        InstanceType("r3.large", 2, 15.25, "memory"),
        InstanceType("r3.xlarge", 4, 30.5, "memory"),
        InstanceType("r3.2xlarge", 8, 61.0, "memory"),
    ]
}

#: Pollution permit granted per GiB-of-memory-per-vCPU (misses/ms).
#: Calibrated so an r3 instance books roughly the level of the paper's
#: Fig 5 experiments (250k) and a c4 instance books a small permit.
LLC_CAP_PER_MEM_RATIO = 33_000.0


def llc_cap_for(instance: InstanceType, per_ratio: float = LLC_CAP_PER_MEM_RATIO) -> float:
    """Derive the booked llc_cap of an instance type.

    The paper: "we can assume that [llc_cap] is proportional to the amount
    of memory assigned to the instance" relative to its compute — R3
    instances get much more than C3/C4 instances.
    """
    if per_ratio <= 0:
        raise ValueError(f"per_ratio must be positive, got {per_ratio}")
    return instance.memory_per_vcpu_gib * per_ratio


def instance(name: str) -> InstanceType:
    """Look an instance type up by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown instance type '{name}'; known: {sorted(CATALOG)}"
        ) from None


def catalog_by_family(family: str) -> List[InstanceType]:
    """All instance types of one family, smallest first."""
    members = [t for t in CATALOG.values() if t.family == family]
    if not members:
        raise ValueError(f"unknown family '{family}'")
    return sorted(members, key=lambda t: t.vcpus)
