"""Resilient monitoring: failover chain, circuit breaker, plausibility.

Production QoS stacks treat monitor loss as a first-class failure mode:
the scheduler must keep VMs safe and billing honest when the monitor
lies, stalls or dies.  :class:`ResilientMonitor` wraps an ordered chain
of attribution strategies — typically replay → socket dedication →
direct PMC — and guarantees its ``sample`` **never raises** and never
returns an implausible value:

1. each chain member is tried in order; a :class:`MonitorError` is
   retried ``retries`` times, then the chain fails over to the next
   member,
2. every member has a circuit breaker: after ``breaker_threshold``
   consecutive failures it opens and the member is skipped for a
   cooldown measured in *simulated* ticks, doubling on every re-open
   (deterministic exponential backoff) and capped,
3. a returned value must pass the plausibility guard
   (:func:`repro.core.equation.is_plausible_rate`): finite,
   non-negative, below the physical ceiling, and — once a history
   exists — within ``spike_factor`` of the per-VM EWMA of last-good
   samples.  Implausible values count as member failures,
4. when the whole chain is exhausted, the per-VM EWMA of last-good
   samples is returned: the VM is debited its own recent estimate,
   never a garbage reading and never an unbounded punishment.

Every rejection, retry, failover, fallback and breaker transition is
counted both on the instance (plain ints, for deterministic reports)
and in the ambient telemetry recorder (``resilient.*`` counters,
docs/telemetry.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.telemetry import MetricsRecorder, current_recorder

from .equation import is_plausible_rate, max_plausible_rate
from .monitor import MonitorError, PollutionMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VirtualMachine


class CircuitBreaker:
    """Deterministic, simulated-time circuit breaker for one monitor.

    States: *closed* (member usable), *open* (member skipped until the
    cooldown expires).  The first open lasts ``cooldown_ticks``; each
    re-open after a failed trial doubles the cooldown up to
    ``max_cooldown_ticks``.  A success closes the breaker and resets
    the backoff.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown_ticks: int = 12,
        max_cooldown_ticks: int = 384,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_ticks < 1:
            raise ValueError(f"cooldown_ticks must be >= 1, got {cooldown_ticks}")
        if max_cooldown_ticks < cooldown_ticks:
            raise ValueError(
                f"max_cooldown_ticks ({max_cooldown_ticks}) must be >= "
                f"cooldown_ticks ({cooldown_ticks})"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.max_cooldown_ticks = max_cooldown_ticks
        self.recorder = recorder if recorder is not None else current_recorder()
        self._consecutive_failures = 0
        self._open_until: Optional[int] = None
        self._current_cooldown = cooldown_ticks
        self.opens = 0
        self.closes = 0

    @property
    def state(self) -> str:
        """``"closed"`` or ``"open"`` (trial permission is tick-dependent)."""
        return "open" if self._open_until is not None else "closed"

    def allow(self, tick: int) -> bool:
        """May the member be tried at simulated ``tick``?

        An open breaker allows one trial once the cooldown expired
        (half-open probing); the trial's outcome decides whether it
        closes or re-opens with a doubled cooldown.
        """
        if self._open_until is None:
            return True
        return tick >= self._open_until

    def record_success(self, tick: int) -> None:
        self._consecutive_failures = 0
        if self._open_until is not None:
            self._open_until = None
            self._current_cooldown = self.cooldown_ticks
            self.closes += 1
            self.recorder.inc(f"resilient.breaker.{self.name}.closes")

    def record_failure(self, tick: int) -> None:
        self._consecutive_failures += 1
        was_open = self._open_until is not None
        if was_open or self._consecutive_failures >= self.failure_threshold:
            if was_open:
                # Failed half-open trial: double the backoff.
                self._current_cooldown = min(
                    self._current_cooldown * 2, self.max_cooldown_ticks
                )
            self._open_until = tick + self._current_cooldown
            self.opens += 1
            self.recorder.inc(f"resilient.breaker.{self.name}.opens")


class ResilientMonitor(PollutionMonitor):
    """Failover chain + plausibility guard; ``sample`` never raises."""

    name = "resilient"

    def __init__(
        self,
        system: "VirtualizedSystem",
        chain: Sequence[PollutionMonitor],
        *,
        ewma_alpha: float = 0.3,
        spike_factor: float = 50.0,
        retries: int = 1,
        breaker_threshold: int = 3,
        breaker_cooldown_ticks: int = 12,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        super().__init__(system)
        if not chain:
            raise ValueError("the failover chain needs at least one monitor")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.chain: List[PollutionMonitor] = list(chain)
        self.ewma_alpha = ewma_alpha
        self.spike_factor = spike_factor
        self.retries = retries
        self.recorder = recorder if recorder is not None else current_recorder()
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                monitor.name,
                failure_threshold=breaker_threshold,
                cooldown_ticks=breaker_cooldown_ticks,
                # Cap the exponential backoff at 32 doublings-worth, but
                # never below the base cooldown itself.
                max_cooldown_ticks=max(384, breaker_cooldown_ticks),
                recorder=self.recorder,
            )
            for monitor in self.chain
        ]
        self._ewma: Dict[int, float] = {}
        # Plain-int mirrors of the telemetry counters, so reports stay
        # deterministic even when the ambient recorder is the no-op one.
        self.retries_performed = 0
        self.failovers = 0
        self.rejected_samples = 0
        self.breaker_skips = 0
        self.last_good_fallbacks = 0

    def estimate_of(self, vm: "VirtualMachine") -> float:
        """Current EWMA of the VM's last-good samples (0.0 untrained)."""
        return self._ewma.get(vm.vm_id, 0.0)

    def sample(self, vm: "VirtualMachine") -> float:
        tick = self.system.tick_index
        ceiling = max_plausible_rate(self.system.freq_khz, len(vm.vcpus))
        last_good = self._ewma.get(vm.vm_id)
        for index, (monitor, breaker) in enumerate(zip(self.chain, self.breakers)):
            if not breaker.allow(tick):
                self.breaker_skips += 1
                self.recorder.inc("resilient.breaker_skips")
                continue
            value = self._try_member(monitor, breaker, vm, tick)
            if value is not None and is_plausible_rate(
                value,
                last_good=last_good,
                spike_factor=self.spike_factor,
                ceiling=ceiling,
            ):
                breaker.record_success(tick)
                previous = self._ewma.get(vm.vm_id)
                self._ewma[vm.vm_id] = (
                    value
                    if previous is None
                    else self.ewma_alpha * value
                    + (1.0 - self.ewma_alpha) * previous
                )
                return value
            if value is not None:
                # The member answered, but with an implausible reading.
                self.rejected_samples += 1
                self.recorder.inc("resilient.rejected_samples")
                breaker.record_failure(tick)
            if index + 1 < len(self.chain):
                self.failovers += 1
                self.recorder.inc("resilient.failovers")
        self.last_good_fallbacks += 1
        self.recorder.inc("resilient.last_good_fallbacks")
        return self._ewma.get(vm.vm_id, 0.0)

    def _try_member(
        self,
        monitor: PollutionMonitor,
        breaker: CircuitBreaker,
        vm: "VirtualMachine",
        tick: int,
    ) -> Optional[float]:
        """One member's attempts (1 + retries); None when all raised."""
        for attempt in range(self.retries + 1):
            try:
                return monitor.sample(vm)
            except MonitorError:
                breaker.record_failure(tick)
                if attempt < self.retries:
                    self.retries_performed += 1
                    self.recorder.inc("resilient.retries")
        return None
