"""The Kyoto contribution: pollution permits, equation 1, monitoring, and
the KS4Xen / KS4Linux scheduler extensions."""

from .billing import Invoice, PollutionBiller, PricingPlan
from .engine import KyotoEngine
from .equation import llc_cap_act, llcm_indicator
from .instances import (
    CATALOG,
    InstanceType,
    LLC_CAP_PER_MEM_RATIO,
    catalog_by_family,
    instance,
    llc_cap_for,
)
from .ks4linux import KS4Linux
from .ks4rtds import KS4RTDS
from .memguard import BandwidthBudget, MemGuardScheduler
from .ks4xen import KS4Xen
from .monitor import (
    DirectPmcMonitor,
    IsolationPolicy,
    McSimReplayMonitor,
    MonitorError,
    PollutionMonitor,
    SocketDedicationMonitor,
    SocketDedicationSampler,
)
from .pollution import PollutionAccount
from .resilient import CircuitBreaker, ResilientMonitor

__all__ = [
    "BandwidthBudget",
    "CATALOG",
    "CircuitBreaker",
    "DirectPmcMonitor",
    "Invoice",
    "MemGuardScheduler",
    "MonitorError",
    "PollutionBiller",
    "PricingPlan",
    "InstanceType",
    "IsolationPolicy",
    "KS4Linux",
    "KS4RTDS",
    "KS4Xen",
    "KyotoEngine",
    "LLC_CAP_PER_MEM_RATIO",
    "McSimReplayMonitor",
    "PollutionAccount",
    "PollutionMonitor",
    "ResilientMonitor",
    "SocketDedicationMonitor",
    "SocketDedicationSampler",
    "catalog_by_family",
    "instance",
    "llc_cap_act",
    "llc_cap_for",
    "llcm_indicator",
]
