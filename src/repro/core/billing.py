"""Pay-per-use pollution billing.

The paper's economic argument is that LLC utilisation should be "charged
to cloud users in the same way as coarse-grained resources".  KS4Xen
enforces the booked level; this module completes the loop with the
provider-side metering: each VM's measured pollution is accumulated over
time, its prepaid permit covers pollution up to ``llc_cap``, and
out-of-permit pollution (possible when enforcement is disabled, or within
the quota-bank slack) is billed at an overage rate — the cloud-billing
analogue of burstable instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VirtualMachine


@dataclass(frozen=True)
class PricingPlan:
    """Provider pricing for LLC pollution.

    Attributes:
        permit_price_per_kmiss_hour: price of booking 1k misses/ms of
            permit for one hour (paid regardless of use, like a reserved
            instance).
        overage_price_per_gmiss: price per billion misses emitted beyond
            the prepaid permit volume.
        currency: label used in invoices.
    """

    permit_price_per_kmiss_hour: float = 0.02
    overage_price_per_gmiss: float = 0.5
    currency: str = "USD"

    def __post_init__(self) -> None:
        if self.permit_price_per_kmiss_hour < 0 or self.overage_price_per_gmiss < 0:
            raise ValueError("prices cannot be negative")


@dataclass
class Invoice:
    """One VM's pollution bill for a metering window."""

    vm_name: str
    window_hours: float
    booked_llc_cap: float
    total_misses: float
    included_misses: float
    overage_misses: float
    permit_cost: float
    overage_cost: float
    currency: str

    @property
    def total_cost(self) -> float:
        return self.permit_cost + self.overage_cost


class PollutionBiller:
    """Meters per-VM LLC misses and produces invoices.

    Attach to a system; it accumulates each vCPU's misses per tick (from
    the simulation's truth counters — the provider's trusted meter).
    """

    def __init__(
        self,
        system: "VirtualizedSystem",
        plan: Optional[PricingPlan] = None,
    ) -> None:
        self.system = system
        self.plan = plan if plan is not None else PricingPlan()
        self._misses_by_vm: Dict[int, float] = {}
        self._metered_usec = 0
        system.add_tick_observer(self._on_tick)

    def _on_tick(self, system: "VirtualizedSystem", tick_index: int) -> None:
        self._metered_usec += system.tick_usec
        for vm in system.vms:
            total = sum(
                system.last_tick_misses.get(vcpu.gid, 0.0) for vcpu in vm.vcpus
            )
            if total:
                self._misses_by_vm[vm.vm_id] = (
                    self._misses_by_vm.get(vm.vm_id, 0.0) + total
                )

    @property
    def metered_hours(self) -> float:
        return self._metered_usec / 3_600e6

    def misses_of(self, vm: "VirtualMachine") -> float:
        """Total metered misses of a VM so far."""
        return self._misses_by_vm.get(vm.vm_id, 0.0)

    def invoice(self, vm: "VirtualMachine") -> Invoice:
        """Bill a VM for the metered window so far."""
        booked = vm.llc_cap if vm.llc_cap is not None else 0.0
        window_ms = self._metered_usec / 1000.0
        included = booked * window_ms  # permit is a *rate*: misses/ms
        total = self.misses_of(vm)
        overage = max(0.0, total - included)
        hours = self.metered_hours
        permit_cost = (booked / 1000.0) * self.plan.permit_price_per_kmiss_hour * hours
        overage_cost = (overage / 1e9) * self.plan.overage_price_per_gmiss
        return Invoice(
            vm_name=vm.name,
            window_hours=hours,
            booked_llc_cap=booked,
            total_misses=total,
            included_misses=included,
            overage_misses=overage,
            permit_cost=permit_cost,
            overage_cost=overage_cost,
            currency=self.plan.currency,
        )

    def invoices(self) -> List[Invoice]:
        """Invoices for every VM on the system."""
        return [self.invoice(vm) for vm in self.system.vms]

    def reset(self) -> None:
        """Start a new metering window."""
        self._misses_by_vm.clear()
        self._metered_usec = 0
