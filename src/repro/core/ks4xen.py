"""KS4Xen: the Kyoto scheduler for Xen.

Extends the credit scheduler (XCS) exactly as Section 3.2 describes: in
addition to the credit ``c``, a VM is configured with the pollution level
``llc_cap`` it booked.  Each monitoring period the measured
``llc_cap_act`` is debited from the VM's ``pollution_quota``; a negative
quota puts the VM in priority ``OVER`` (parked), and each time slice the
VM earns quota back according to its booked ``llc_cap``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.schedulers.credit import CreditScheduler

from .engine import KyotoEngine
from .monitor import PollutionMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vcpu import VCpu


class KS4Xen(CreditScheduler):
    """Credit scheduler + pollution permits."""

    name = "ks4xen"

    def __init__(
        self,
        monitor: Optional[PollutionMonitor] = None,
        quota_max_factor: float = 3.0,
        monitor_period_ticks: int = 1,
        quota_min_factor: Optional[float] = None,
    ) -> None:
        super().__init__()
        self._monitor = monitor
        self._quota_max_factor = quota_max_factor
        self._monitor_period_ticks = monitor_period_ticks
        self._quota_min_factor = quota_min_factor
        self.kyoto: Optional[KyotoEngine] = None

    def attach(self, system: "VirtualizedSystem") -> None:
        super().attach(system)
        self.kyoto = KyotoEngine(
            system,
            monitor=self._monitor,
            quota_max_factor=self._quota_max_factor,
            monitor_period_ticks=self._monitor_period_ticks,
            quota_min_factor=self._quota_min_factor,
        )

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        super().on_vcpu_registered(vcpu, core_id)
        self.kyoto.register_vm(vcpu.vm)

    def is_parked(self, vcpu: "VCpu") -> bool:
        return self.kyoto.is_parked(vcpu.vm)

    def on_tick_end(self, tick_index: int) -> None:
        super().on_tick_end(tick_index)
        self.kyoto.on_tick_end(tick_index)

    def on_accounting(self, tick_index: int) -> None:
        super().on_accounting(tick_index)
        self.kyoto.on_accounting(tick_index)
