"""KS4RTDS: the Kyoto extension of Xen's RTDS scheduler.

The fourth port, confirming the paper's claim that the approach "can
easily be implemented within other systems": the pollution accounts and
monitoring come unchanged from :class:`~repro.core.engine.KyotoEngine`;
the scheduler-specific part is once again just the ``is_parked`` hook —
a VM whose pollution quota is negative is ineligible for dispatch even
if its real-time server has budget left.  (Its deadline guarantees are
deliberately subordinated to the cache permit: pollution beyond the
booked level is exactly what the VM did *not* pay for.)
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.schedulers.rtds import RtdsScheduler

from .engine import KyotoEngine
from .monitor import PollutionMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vcpu import VCpu


class KS4RTDS(RtdsScheduler):
    """RTDS + pollution permits."""

    name = "ks4rtds"

    def __init__(
        self,
        monitor: Optional[PollutionMonitor] = None,
        quota_max_factor: float = 3.0,
        monitor_period_ticks: int = 1,
    ) -> None:
        super().__init__()
        self._monitor = monitor
        self._quota_max_factor = quota_max_factor
        self._monitor_period_ticks = monitor_period_ticks
        self.kyoto: Optional[KyotoEngine] = None

    def attach(self, system: "VirtualizedSystem") -> None:
        super().attach(system)
        self.kyoto = KyotoEngine(
            system,
            monitor=self._monitor,
            quota_max_factor=self._quota_max_factor,
            monitor_period_ticks=self._monitor_period_ticks,
        )

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        super().on_vcpu_registered(vcpu, core_id)
        self.kyoto.register_vm(vcpu.vm)

    def is_parked(self, vcpu: "VCpu") -> bool:
        return self.kyoto.is_parked(vcpu.vm)

    def on_tick_end(self, tick_index: int) -> None:
        super().on_tick_end(tick_index)
        self.kyoto.on_tick_end(tick_index)

    def on_accounting(self, tick_index: int) -> None:
        super().on_accounting(tick_index)
        self.kyoto.on_accounting(tick_index)
