"""MemGuard-style memory-bandwidth reservation (related work [39]).

MemGuard (Yun et al., RTAS 2013) reserves per-core memory *bandwidth*:
each period, a core gets a budget of memory accesses; exhausting the
budget throttles the core until the next period.  Since every LLC miss is
a memory access, MemGuard's budget and Kyoto's pollution permit meter the
same events — the difference is the accounting discipline:

* **MemGuard**: hard per-period budget with no carry-over in either
  direction — overshoot is forgiven at every period boundary, so even a
  heavy overdrawer is guaranteed one burst per period (a real-time-style
  periodic service guarantee).
* **Kyoto**: a banked quota debited by the *measured rate* — overshoot
  carries over as debt, so persistent polluters are throttled harder in
  the long run, while an occasional burst can ride banked allowance.

``MemGuardScheduler`` implements the baseline on the credit scheduler so
the benchmarks can compare the two disciplines on identical colocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.schedulers.credit import CreditScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vcpu import VCpu


@dataclass
class BandwidthBudget:
    """Per-VM MemGuard state.

    ``budget_misses_per_period`` is the reservation; ``used`` tracks the
    current period's consumption.
    """

    budget_misses_per_period: float
    used: float = 0.0
    throttled: bool = False
    throttle_events: int = 0

    def __post_init__(self) -> None:
        if self.budget_misses_per_period < 0:
            raise ValueError(
                f"budget must be >= 0, got {self.budget_misses_per_period}"
            )

    def charge(self, misses: float) -> None:
        """Account one tick's misses; throttle on budget exhaustion."""
        if misses < 0:
            raise ValueError(f"misses cannot be negative: {misses}")
        self.used += misses
        if not self.throttled and self.used >= self.budget_misses_per_period:
            self.throttled = True
            self.throttle_events += 1

    def replenish(self) -> None:
        """New period: budget restored, no carry-over in either direction."""
        self.used = 0.0
        self.throttled = False


class MemGuardScheduler(CreditScheduler):
    """Credit scheduler + per-period memory-bandwidth reservations.

    VMs declare their reservation through the same ``llc_cap`` config
    field (misses/ms); the per-period budget is
    ``llc_cap * period_ms``.
    """

    name = "memguard"

    def __init__(self, period_ticks: Optional[int] = None) -> None:
        super().__init__()
        self._period_ticks = period_ticks
        self.budgets: Dict[int, BandwidthBudget] = {}

    @property
    def period_ticks(self) -> int:
        if self._period_ticks is not None:
            return self._period_ticks
        return self.system.ticks_per_slice

    def on_vcpu_registered(self, vcpu: "VCpu", core_id: int) -> None:
        super().on_vcpu_registered(vcpu, core_id)
        vm = vcpu.vm
        if vm.llc_cap is not None and vm.vm_id not in self.budgets:
            period_ms = self.period_ticks * self.system.tick_usec / 1000.0
            self.budgets[vm.vm_id] = BandwidthBudget(
                budget_misses_per_period=vm.llc_cap * period_ms
            )

    def budget_of(self, vm) -> Optional[BandwidthBudget]:
        return self.budgets.get(vm.vm_id)

    def is_parked(self, vcpu: "VCpu") -> bool:
        budget = self.budgets.get(vcpu.vm.vm_id)
        return budget is not None and budget.throttled

    def on_tick_end(self, tick_index: int) -> None:
        super().on_tick_end(tick_index)
        for vm in self.system.vms:
            budget = self.budgets.get(vm.vm_id)
            if budget is None:
                continue
            misses = sum(
                self.system.last_tick_misses.get(vcpu.gid, 0.0)
                for vcpu in vm.vcpus
            )
            budget.charge(misses)
        if (tick_index + 1) % self.period_ticks == 0:
            for budget in self.budgets.values():
                budget.replenish()
