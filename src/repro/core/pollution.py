"""Pollution permits and quota accounting.

The "polluters pay" bookkeeping of Section 3.2:

* a VM books ``llc_cap`` — the pollution level (misses/ms) it intends to
  generate,
* at runtime a ``pollution_quota`` scheduling variable is debited by the
  measured ``llc_cap_act`` at every monitoring period,
* a negative quota demotes the VM to priority ``OVER`` — it cannot use
  the processor — and counts one *punishment*,
* at the end of each time slice the VM earns quota proportional to its
  booked ``llc_cap``, eventually returning it to ``UNDER``.

Quota is expressed in the same unit as ``llc_cap`` (misses/ms); a refill
adds ``llc_cap`` per elapsed tick, and a debit subtracts the measured
rate per tick, so a VM polluting at exactly its booked level breaks even.
Accumulated quota is capped at ``quota_max_factor * llc_cap`` so a long
idle period cannot bank an unbounded pollution burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lint.contracts import invariant
from repro.telemetry import NULL_RECORDER, MetricsRecorder


@dataclass
class PollutionAccount:
    """Kyoto scheduling state of one VM."""

    llc_cap: float
    quota_max_factor: float = 3.0
    #: Optional quota floor: when set, quota never sinks below
    #: ``-quota_min_factor * llc_cap``.  ``None`` (the default) keeps the
    #: seed behaviour — an unbounded debt — so enabling the floor is an
    #: explicit resilience choice (a lying monitor must not be able to
    #: park a VM beyond its bank bound; see docs/faults.md).
    quota_min_factor: Optional[float] = None
    #: Optional telemetry hook (docs/telemetry.md); no-op by default.
    recorder: Optional[MetricsRecorder] = field(
        default=None, repr=False, compare=False
    )
    quota: float = field(init=False)
    punishments: int = field(default=0, init=False)
    #: Sum of every measured llc_cap_act debit (for reporting).
    total_debited: float = field(default=0.0, init=False)
    samples: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.llc_cap < 0:
            raise ValueError(f"llc_cap must be >= 0, got {self.llc_cap}")
        if self.quota_max_factor <= 0:
            raise ValueError(
                f"quota_max_factor must be positive, got {self.quota_max_factor}"
            )
        if self.quota_min_factor is not None and self.quota_min_factor <= 0:
            raise ValueError(
                f"quota_min_factor must be positive, got {self.quota_min_factor}"
            )
        if self.recorder is None:
            self.recorder = NULL_RECORDER
        self.quota = self.quota_max

    @property
    def quota_max(self) -> float:
        """Upper bound on banked quota."""
        return self.quota_max_factor * self.llc_cap

    @property
    def quota_min(self) -> Optional[float]:
        """Lower bound on quota debt (None = unbounded, the seed default)."""
        if self.quota_min_factor is None:
            return None
        return -self.quota_min_factor * self.llc_cap

    @property
    def parked(self) -> bool:
        """True when the VM is in priority OVER (quota exhausted)."""
        return self.quota < 0

    def debit(self, measured_llc_cap_act: float) -> bool:
        """Debit one monitoring period's measured pollution.

        Returns True if this debit *newly* punished the VM (UNDER → OVER
        transition), which is what Fig 5's punishment counter counts.
        """
        if measured_llc_cap_act < 0:
            raise ValueError(
                f"measured pollution cannot be negative: {measured_llc_cap_act}"
            )
        was_parked = self.parked
        self.quota -= measured_llc_cap_act
        floor = self.quota_min
        if floor is not None and self.quota < floor:
            self.quota = floor
            self.recorder.inc("pollution.floor_clamps")
        self.total_debited += measured_llc_cap_act
        self.samples += 1
        newly_punished = self.parked and not was_parked
        if newly_punished:
            self.punishments += 1
        self.recorder.inc("pollution.debited_total", measured_llc_cap_act)
        if newly_punished:
            self.recorder.inc("pollution.punishments")
        return newly_punished

    @invariant(
        lambda self: self.quota <= self.quota_max + 1e-9, name="quota-cap"
    )
    def refill(self, ticks: int = 1) -> None:
        """Earn quota for ``ticks`` elapsed ticks of the time slice."""
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        self.quota = min(self.quota + self.llc_cap * ticks, self.quota_max)

    @property
    def mean_measured(self) -> float:
        """Average measured llc_cap_act across all samples so far."""
        if self.samples == 0:
            return 0.0
        return self.total_debited / self.samples
