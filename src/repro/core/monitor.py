"""Kyoto monitoring: measuring each VM's pollution level.

Section 3.3 of the paper: collecting LLC statistics is easy; *attributing*
them to one VM while several VMs share the LLC is the hard part ("a VM
should not be punished for the pollution of another VM").  Three monitors
are provided:

:class:`DirectPmcMonitor`
    Reads the perfctr-virtualised per-vCPU counters as-is.  Cheap and
    online, but the measured rate is the *contended* rate: reload misses
    caused by co-runners inflate it.

:class:`SocketDedicationSampler`
    The paper's first solution — dedicate the socket to the sampled vCPU
    by migrating everyone else to the second socket for the sampling
    window, measure, migrate back.  Measures the intrinsic rate but
    perturbs the migrated vCPUs (Fig 9) unless the isolation-skipping
    heuristics of Section 4.5 apply (:class:`IsolationPolicy`).

:class:`McSimReplayMonitor`
    The paper's second solution — replay the VM's instruction stream in a
    micro-architectural simulator on a dedicated machine and read the PMCs
    the simulator returns (see :mod:`repro.mcsim`).  No perturbation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.pmc.counters import PmcEvent
from repro.telemetry import current_recorder

from .equation import llc_cap_act

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.system import VirtualizedSystem
    from repro.hypervisor.vm import VirtualMachine


class MonitorError(Exception):
    """A monitor failed to produce a sample this period.

    The contract of the monitoring path: monitors signal failure by
    raising ``MonitorError`` (or a subclass), and the enforcement engine
    treats any such failure as a *missing* sample — it never crashes and
    never debits a garbage reading (see
    :meth:`repro.core.engine.KyotoEngine.on_tick_end` and
    :class:`repro.core.resilient.ResilientMonitor`).
    """


class PollutionMonitor(ABC):
    """Produces a VM's measured llc_cap_act each monitoring period."""

    name = "abstract"

    def __init__(self, system: "VirtualizedSystem") -> None:
        self.system = system

    @abstractmethod
    def sample(self, vm: "VirtualMachine") -> float:
        """Measured pollution (misses/ms) since the previous sample."""


class DirectPmcMonitor(PollutionMonitor):
    """Per-vCPU virtualised PMCs, read online via perfctr.

    The paper assumes vCPUs of the same VM behave alike and considers only
    one vCPU; we do the same and scale by the vCPU count.  A configurable
    per-sample CPU cost models the (tiny) perfctr gathering overhead that
    Fig 12 shows to be negligible.
    """

    name = "direct-pmc"

    def __init__(
        self,
        system: "VirtualizedSystem",
        sampling_cost_cycles: int = 2_000,
    ) -> None:
        super().__init__(system)
        if sampling_cost_cycles < 0:
            raise ValueError(
                f"sampling cost cannot be negative: {sampling_cost_cycles}"
            )
        self.sampling_cost_cycles = sampling_cost_cycles

    def sample(self, vm: "VirtualMachine") -> float:
        lead = vm.vcpus[0]
        deltas = self.system.perfctr.sample(lead.gid)
        self._charge_cost(lead)
        rate = llc_cap_act(
            deltas[PmcEvent.LLC_MISSES],
            deltas[PmcEvent.UNHALTED_CORE_CYCLES],
            self.system.freq_khz_of_vcpu(lead),
        )
        return rate * len(vm.vcpus)

    def _charge_cost(self, vcpu) -> None:
        if self.sampling_cost_cycles == 0 or vcpu.current_core is None:
            return
        # The hypervisor burns the gathering cost on the vCPU's core.
        pending = self.system._pending_penalty_cycles
        pending[vcpu.current_core] = (
            pending.get(vcpu.current_core, 0) + self.sampling_cost_cycles
        )


class IsolationPolicy:
    """Section 4.5's "when can we skip socket dedication" heuristics.

    Isolation of a vCPU is unnecessary when:

    * the vCPU itself generates very few LLC misses (it is neither a
      disturber nor sensitive), or
    * every co-runner sharing its LLC generates very few LLC misses (the
      contended measurement is close to the intrinsic one anyway).
    """

    def __init__(
        self,
        system: "VirtualizedSystem",
        low_pollution_threshold: float = 10_000.0,
    ) -> None:
        if low_pollution_threshold < 0:
            raise ValueError(
                f"threshold cannot be negative: {low_pollution_threshold}"
            )
        self.system = system
        self.low_pollution_threshold = low_pollution_threshold

    def _recent_rate(self, vcpu) -> float:
        """Last-tick truth miss rate of a vCPU (misses/ms)."""
        misses = self.system.last_tick_misses.get(vcpu.gid, 0.0)
        cycles = self.system.last_tick_cycles.get(vcpu.gid, 0)
        if cycles == 0:
            return 0.0
        return misses / (cycles / self.system.freq_khz_of_vcpu(vcpu))

    def should_isolate(self, vm: "VirtualMachine") -> bool:
        """True if measuring ``vm`` requires dedicating the socket."""
        lead = vm.vcpus[0]
        if self._recent_rate(lead) < self.low_pollution_threshold:
            return False
        core_id = (
            lead.current_core if lead.current_core is not None else lead.pinned_core
        )
        if core_id is None:
            return True
        socket = self.system.machine.socket_of(core_id)
        others = [
            v
            for v in self.system.vcpus
            if v is not lead and self._on_socket(v, socket.socket_id)
        ]
        if all(
            self._recent_rate(v) < self.low_pollution_threshold for v in others
        ):
            return False
        return True

    def _on_socket(self, vcpu, socket_id: int) -> bool:
        core_id = (
            vcpu.current_core if vcpu.current_core is not None else vcpu.pinned_core
        )
        if core_id is None:
            return False
        return self.system.machine.core(core_id).socket_id == socket_id


class SocketDedicationSampler:
    """Measure a VM's intrinsic pollution by dedicating its socket.

    Requires a multi-socket machine.  During the sampling window, every
    other vCPU of the target socket is migrated to ``spill_socket``; the
    sampled vCPU then runs undisturbed and its PMC readings reflect its
    intrinsic pollution.  Afterwards everyone migrates back.  The
    perturbation this causes to the migrated vCPUs is exactly the Fig 9
    overhead.
    """

    name = "socket-dedication"

    def __init__(
        self,
        system: "VirtualizedSystem",
        spill_socket: int = 1,
        isolation_policy: Optional[IsolationPolicy] = None,
    ) -> None:
        if system.machine.spec.num_sockets < 2:
            raise ValueError(
                "socket dedication needs at least two sockets; "
                f"machine has {system.machine.spec.num_sockets}"
            )
        self.system = system
        self.spill_socket = spill_socket
        self.isolation_policy = isolation_policy
        self.migrations_performed = 0
        #: vCPUs left stranded on the spill socket because the restore
        #: migration itself failed (only possible under fault injection).
        self.restore_failures = 0

    def sample(self, vm: "VirtualMachine", sample_ticks: int = 3) -> float:
        """Run a dedicated-socket sampling window and return llc_cap_act.

        The world is restored even when the window fails part-way: any
        vCPU migrated off the home socket is migrated back before the
        failure propagates.  A migration failure (injected or real)
        surfaces as :class:`MonitorError` so a failover chain can move
        on to the next strategy.
        """
        if sample_ticks <= 0:
            raise ValueError(f"sample_ticks must be positive, got {sample_ticks}")
        from repro.hypervisor.system import HypervisorError

        lead = vm.vcpus[0]
        if self.isolation_policy is not None and not self.isolation_policy.should_isolate(vm):
            return self._contended_sample(vm, sample_ticks)

        home_core = (
            lead.current_core if lead.current_core is not None else lead.pinned_core
        )
        if home_core is None:
            home_core = 0
        home_socket = self.system.machine.core(home_core).socket_id
        spill_cores = list(
            self.system.machine.spec.cores_of_socket(self.spill_socket)
        )
        # Migrate every other vCPU of the home socket away.
        moved: List[tuple] = []
        spill_index = 0
        try:
            for vcpu in self.system.vcpus:
                if vcpu is lead:
                    continue
                core_id = (
                    vcpu.current_core
                    if vcpu.current_core is not None
                    else vcpu.pinned_core
                )
                if core_id is None:
                    continue
                if self.system.machine.core(core_id).socket_id != home_socket:
                    continue
                target = spill_cores[spill_index % len(spill_cores)]
                spill_index += 1
                self.system.migrate_vcpu(vcpu, target)
                self.migrations_performed += 1
                moved.append((vcpu, core_id))

            measured = self._contended_sample(vm, sample_ticks)
        except HypervisorError as exc:
            raise MonitorError(
                f"socket dedication failed mid-window: {exc}"
            ) from exc
        finally:
            self._restore(moved)
        return measured

    def _restore(self, moved: List[tuple]) -> None:
        """Best-effort return of every migrated vCPU to its home core."""
        from repro.hypervisor.system import HypervisorError

        for vcpu, original_core in moved:
            try:
                self.system.migrate_vcpu(vcpu, original_core)
                self.migrations_performed += 1
            except HypervisorError:
                # Leave the vCPU stranded on the spill socket rather than
                # abandon the remaining restores; visible in telemetry.
                self.restore_failures += 1
                current_recorder().inc("monitor.restore_failures")

    def _contended_sample(self, vm: "VirtualMachine", sample_ticks: int) -> float:
        lead = vm.vcpus[0]
        self.system.perfctr.sample(lead.gid)  # reset the sample baseline
        self.system.run_ticks(sample_ticks)
        deltas = self.system.perfctr.sample(lead.gid)
        rate = llc_cap_act(
            deltas[PmcEvent.LLC_MISSES],
            deltas[PmcEvent.UNHALTED_CORE_CYCLES],
            self.system.freq_khz_of_vcpu(lead),
        )
        return rate * len(vm.vcpus)


class SocketDedicationMonitor(PollutionMonitor):
    """Periodic-monitor adapter over :class:`SocketDedicationSampler`.

    Lets socket dedication participate in a failover chain
    (:class:`repro.core.resilient.ResilientMonitor`): each ``sample``
    runs one dedicated-socket window of ``sample_ticks`` *real* ticks —
    simulated time advances, exactly the Fig 9 perturbation — and any
    hypervisor failure surfaces as :class:`MonitorError`.  The
    enforcement engine's reentrancy guard keeps the nested ticks from
    re-triggering monitoring inside the window.
    """

    name = "socket-dedication-window"

    def __init__(
        self,
        system: "VirtualizedSystem",
        sampler: Optional[SocketDedicationSampler] = None,
        sample_ticks: int = 1,
    ) -> None:
        super().__init__(system)
        if sample_ticks <= 0:
            raise ValueError(f"sample_ticks must be positive, got {sample_ticks}")
        self.sampler = (
            sampler if sampler is not None else SocketDedicationSampler(system)
        )
        self.sample_ticks = sample_ticks

    def sample(self, vm: "VirtualMachine") -> float:
        from repro.hypervisor.system import HypervisorError

        try:
            return self.sampler.sample(vm, self.sample_ticks)
        except HypervisorError as exc:
            raise MonitorError(f"socket dedication window failed: {exc}") from exc


class FaultInjectingMonitor(PollutionMonitor):
    """Wraps a monitor with injected measurement faults (for testing).

    Real monitoring pipelines lose samples (counter multiplexing, NMI
    windows) and carry noise.  The enforcement engine must stay sane
    under both, and this wrapper lets tests prove it:

    * ``drop_every``: every n-th sample is lost (reported as 0.0, as a
      missed sampling window would be),
    * ``noise_fraction``: multiplicative noise, uniform in
      ``[1-f, 1+f]``, from a seeded RNG (deterministic tests), or an
      injected ``rng`` stream (e.g. ``RngRegistry.stream``).
    """

    name = "fault-injecting"

    def __init__(
        self,
        inner: PollutionMonitor,
        drop_every: int = 0,
        noise_fraction: float = 0.0,
        seed: int = 0,
        rng=None,
    ) -> None:
        super().__init__(inner.system)
        if drop_every < 0:
            raise ValueError(f"drop_every must be >= 0, got {drop_every}")
        if not 0.0 <= noise_fraction < 1.0:
            raise ValueError(
                f"noise_fraction must be in [0,1), got {noise_fraction}"
            )
        from repro.simulation.rng import seeded_stream

        self.inner = inner
        self.drop_every = drop_every
        self.noise_fraction = noise_fraction
        # Nameless stream is deliberate: the PMC-noise goldens pin sha256
        # digests of runs seeded exactly this way; renaming would reseed.
        self._rng = rng if rng is not None else seeded_stream(seed)  # kyotolint: disable=S002
        self._count = 0
        self.dropped = 0

    def sample(self, vm: "VirtualMachine") -> float:
        value = self.inner.sample(vm)
        self._count += 1
        if self.drop_every and self._count % self.drop_every == 0:
            self.dropped += 1
            return 0.0
        if self.noise_fraction:
            value *= 1.0 + self._rng.uniform(
                -self.noise_fraction, self.noise_fraction
            )
        return value


class McSimReplayMonitor(PollutionMonitor):
    """Monitor using the McSimA+-style replay service.

    Asks the replay service (running on a "dedicated machine", so zero
    perturbation of the production host) for the VM's intrinsic LLC miss
    *ratio*, then converts it to misses/ms using the VM's observed
    execution speed from the cheap PMC events (instructions and cycles are
    attributable without socket dedication; only the shared-LLC miss
    counter is contaminated by contention).
    """

    name = "mcsim-replay"

    def __init__(self, system: "VirtualizedSystem", replay_service) -> None:
        super().__init__(system)
        self.replay_service = replay_service

    def sample(self, vm: "VirtualMachine") -> float:
        lead = vm.vcpus[0]
        # Ask the replay service *before* consuming the perfctr sampling
        # window: a failing service then leaves the window intact for
        # whatever monitor a failover chain tries next.
        report = self.replay_service.replay_vm(vm)
        deltas = self.system.perfctr.sample(lead.gid)
        cycles = deltas[PmcEvent.UNHALTED_CORE_CYCLES]
        instructions = deltas[PmcEvent.INSTRUCTIONS_RETIRED]
        if cycles == 0:
            return 0.0
        inst_per_ms = instructions / (cycles / self.system.freq_khz)
        misses_per_ms = inst_per_ms * report.misses_per_kinst / 1000.0
        return misses_per_ms * len(vm.vcpus)
