"""Cache-aware VM placement baselines (the paper's related-work
category 1) and their evaluation harness."""

from .algorithms import (
    Placement,
    VmDescriptor,
    balance_pollution_placement,
    round_robin_placement,
    segregate_placement,
)
from .evaluate import PlacementEvaluation, evaluate_placement

__all__ = [
    "Placement",
    "PlacementEvaluation",
    "VmDescriptor",
    "balance_pollution_placement",
    "evaluate_placement",
    "round_robin_placement",
    "segregate_placement",
]
