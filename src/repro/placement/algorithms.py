"""Cache-aware VM placement algorithms.

The first related-work category ([21, 24, 30, 37]): instead of enforcing
permits, place VMs so aggressive and sensitive ones do not share an LLC.
The paper's critique — placement is NP-hard, needs knowledge of the
hosted applications, and is not pay-per-use — is precisely why these are
*baselines* here; the benchmarks compare them against Kyoto.

Three policies over identical hosts:

* :func:`round_robin_placement` — the oblivious baseline.
* :func:`balance_pollution_placement` — greedy: biggest polluter first,
  each onto the host with the least accumulated pollution (the
  consolidation heuristic of [37], minimising overall LLC pressure).
* :func:`segregate_placement` — separates polluters from sensitive VMs
  onto disjoint hosts where capacity allows (the ATOM-style mapping of
  [21]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class VmDescriptor:
    """What the placement algorithms know about a VM.

    Attributes:
        name: VM identifier.
        app: application name (resolved to a workload at evaluation).
        pollution: measured/booked pollution level (misses/ms) — in a
            Kyoto cloud this is simply the booked ``llc_cap``.
        sensitive: whether the owner flagged the VM as cache-sensitive.
    """

    name: str
    app: str
    pollution: float
    sensitive: bool = False

    def __post_init__(self) -> None:
        if self.pollution < 0:
            raise ValueError(f"{self.name}: pollution must be >= 0")


@dataclass
class Placement:
    """An assignment of VMs to hosts (host index -> descriptors)."""

    num_hosts: int
    assignments: Dict[int, List[VmDescriptor]] = field(default_factory=dict)

    def assign(self, host: int, vm: VmDescriptor) -> None:
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range (0..{self.num_hosts - 1})")
        self.assignments.setdefault(host, []).append(vm)

    def host_of(self, name: str) -> int:
        for host, vms in self.assignments.items():
            if any(vm.name == name for vm in vms):
                return host
        raise KeyError(name)

    def pollution_of_host(self, host: int) -> float:
        return sum(vm.pollution for vm in self.assignments.get(host, []))

    @property
    def max_host_pollution(self) -> float:
        if not self.assignments:
            return 0.0
        return max(
            self.pollution_of_host(host) for host in range(self.num_hosts)
        )

    def validate_capacity(self, cores_per_host: int) -> None:
        for host, vms in self.assignments.items():
            if len(vms) > cores_per_host:
                raise ValueError(
                    f"host {host} has {len(vms)} VMs but only "
                    f"{cores_per_host} cores"
                )


def round_robin_placement(
    vms: Sequence[VmDescriptor], num_hosts: int
) -> Placement:
    """Oblivious placement: VM i goes to host i mod num_hosts."""
    if num_hosts <= 0:
        raise ValueError(f"need at least one host, got {num_hosts}")
    placement = Placement(num_hosts)
    for index, vm in enumerate(vms):
        placement.assign(index % num_hosts, vm)
    return placement


def balance_pollution_placement(
    vms: Sequence[VmDescriptor], num_hosts: int, cores_per_host: int = 4
) -> Placement:
    """Greedy longest-processing-time on pollution.

    Sorting by pollution descending and always choosing the least-loaded
    host is the classic 4/3-approximation for makespan — here the
    "makespan" is the pollution a host's LLC must absorb.
    """
    if num_hosts <= 0:
        raise ValueError(f"need at least one host, got {num_hosts}")
    placement = Placement(num_hosts)
    counts = [0] * num_hosts
    for vm in sorted(vms, key=lambda v: -v.pollution):
        candidates = [h for h in range(num_hosts) if counts[h] < cores_per_host]
        if not candidates:
            raise ValueError("not enough host cores for all VMs")
        host = min(candidates, key=lambda h: (placement.pollution_of_host(h), h))
        placement.assign(host, vm)
        counts[host] += 1
    return placement


def segregate_placement(
    vms: Sequence[VmDescriptor], num_hosts: int, cores_per_host: int = 4
) -> Placement:
    """Separate sensitive VMs from polluters where capacity allows.

    Sensitive VMs fill hosts from the front, polluters from the back;
    they only mix when the cluster is too full to keep them apart.
    """
    if num_hosts <= 0:
        raise ValueError(f"need at least one host, got {num_hosts}")
    placement = Placement(num_hosts)
    counts = [0] * num_hosts

    def place(vm: VmDescriptor, host_order: List[int]) -> None:
        for host in host_order:
            if counts[host] < cores_per_host:
                placement.assign(host, vm)
                counts[host] += 1
                return
        raise ValueError("not enough host cores for all VMs")

    front = list(range(num_hosts))
    back = list(reversed(front))
    for vm in sorted(vms, key=lambda v: -v.pollution):
        if vm.sensitive:
            place(vm, front)
        else:
            place(vm, back)
    return placement
