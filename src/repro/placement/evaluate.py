"""Placement evaluation: simulate every host and measure degradations.

Builds one :class:`~repro.hypervisor.system.VirtualizedSystem` per host,
runs the placed VMs in parallel (one per core), and reports each VM's
IPC degradation against its solo baseline — the quantity the placement
algorithms try to minimise and Kyoto enforces instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.metrics import degradation_percent
from repro.hardware.specs import MachineSpec, paper_machine
from repro.hypervisor.system import VirtualizedSystem
from repro.hypervisor.vm import VmConfig
from repro.schedulers.credit import CreditScheduler
from repro.workloads.profiles import application_workload

from .algorithms import Placement, VmDescriptor


@dataclass
class PlacementEvaluation:
    """Per-VM and aggregate outcome of one placement."""

    degradation: Dict[str, float] = field(default_factory=dict)
    sensitive_names: List[str] = field(default_factory=list)

    @property
    def mean_degradation(self) -> float:
        if not self.degradation:
            return 0.0
        return sum(self.degradation.values()) / len(self.degradation)

    @property
    def max_degradation(self) -> float:
        if not self.degradation:
            return 0.0
        return max(self.degradation.values())

    @property
    def mean_sensitive_degradation(self) -> float:
        values = [self.degradation[n] for n in self.sensitive_names]
        if not values:
            return 0.0
        return sum(values) / len(values)


def _solo_ipc(app: str, machine: MachineSpec, warmup: int, measure: int,
              cache: Dict[str, float]) -> float:
    if app not in cache:
        system = VirtualizedSystem(CreditScheduler(), machine)
        vm = system.create_vm(
            VmConfig(name=app, workload=application_workload(app),
                     pinned_cores=[0])
        )
        system.run_ticks(warmup)
        vm.reset_metrics()
        system.run_ticks(measure)
        cache[app] = vm.vcpus[0].ipc
    return cache[app]


def evaluate_placement(
    placement: Placement,
    machine: Optional[MachineSpec] = None,
    scheduler_factory: Callable = CreditScheduler,
    llc_cap_of: Optional[Callable[[VmDescriptor], Optional[float]]] = None,
    warmup_ticks: int = 25,
    measure_ticks: int = 90,
) -> PlacementEvaluation:
    """Simulate all hosts of a placement and measure per-VM degradation.

    ``scheduler_factory`` selects the per-host scheduler (e.g.
    :class:`~repro.core.ks4xen.KS4Xen` to combine placement with Kyoto);
    ``llc_cap_of`` optionally books a permit per VM.
    """
    if machine is None:
        machine = paper_machine()
    solo_cache: Dict[str, float] = {}
    evaluation = PlacementEvaluation()
    for host in range(placement.num_hosts):
        vms = placement.assignments.get(host, [])
        if not vms:
            continue
        placement.validate_capacity(machine.total_cores)
        system = VirtualizedSystem(scheduler_factory(), machine)
        created = []
        for core, descriptor in enumerate(vms):
            llc_cap = llc_cap_of(descriptor) if llc_cap_of is not None else None
            vm = system.create_vm(
                VmConfig(
                    name=descriptor.name,
                    workload=application_workload(descriptor.app),
                    llc_cap=llc_cap,
                    pinned_cores=[core],
                )
            )
            created.append((descriptor, vm))
        system.run_ticks(warmup_ticks)
        for __, vm in created:
            vm.reset_metrics()
        system.run_ticks(measure_ticks)
        for descriptor, vm in created:
            baseline = _solo_ipc(
                descriptor.app, machine, warmup_ticks, measure_ticks,
                solo_cache,
            )
            evaluation.degradation[descriptor.name] = degradation_percent(
                baseline, vm.vcpus[0].ipc
            )
            if descriptor.sensitive:
                evaluation.sensitive_names.append(descriptor.name)
    return evaluation
