"""Machine specifications.

Encodes Table 1 of the paper (the Dell machine with an Intel Xeon E5-1603
v3) plus the two-socket PowerEdge R420 used for the NUMA / vCPU-migration
experiments of Fig 9.  Everything downstream (cache simulators, occupancy
model, schedulers) is parameterised by these specs, so alternative machines
can be modelled by constructing a different :class:`MachineSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .latency import LatencyModel, PAPER_LATENCIES

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level.

    Attributes:
        name: human-readable level name ("L1D", "L2", "LLC").
        size_bytes: total capacity.
        associativity: number of ways per set.
        line_bytes: cache line size.
        shared: True if the cache is shared by all cores of a socket
            (the LLC), False if private per core (L1/L2).
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError(f"invalid cache spec: {self}")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.associativity}*{self.line_bytes})"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class SocketSpec:
    """One processor socket: cores plus its private cache hierarchy."""

    cores: int
    freq_khz: int
    l1d: CacheSpec
    l1i: CacheSpec
    l2: CacheSpec
    llc: CacheSpec

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"socket needs at least one core, got {self.cores}")
        if self.freq_khz <= 0:
            raise ValueError(f"invalid frequency {self.freq_khz} kHz")
        if not self.llc.shared:
            raise ValueError("the LLC must be marked shared")

    @property
    def freq_hz(self) -> int:
        return self.freq_khz * 1_000

    @property
    def freq_ghz(self) -> float:
        return self.freq_khz / 1_000_000


@dataclass(frozen=True)
class MachineSpec:
    """A full physical machine: sockets, memory and latency model."""

    name: str
    sockets: Tuple[SocketSpec, ...]
    memory_bytes: int
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ValueError("machine needs at least one socket")
        if self.memory_bytes <= 0:
            raise ValueError(f"invalid memory size {self.memory_bytes}")

    @property
    def total_cores(self) -> int:
        return sum(socket.cores for socket in self.sockets)

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    def socket_of_core(self, core_id: int) -> int:
        """Socket index that physically contains global ``core_id``."""
        if core_id < 0:
            raise ValueError(f"negative core id {core_id}")
        offset = 0
        for index, socket in enumerate(self.sockets):
            if core_id < offset + socket.cores:
                return index
            offset += socket.cores
        raise ValueError(f"core {core_id} out of range (total {self.total_cores})")

    def cores_of_socket(self, socket_id: int) -> Tuple[int, ...]:
        """Global core ids belonging to ``socket_id``."""
        if not 0 <= socket_id < len(self.sockets):
            raise ValueError(f"socket {socket_id} out of range")
        offset = sum(s.cores for s in self.sockets[:socket_id])
        return tuple(range(offset, offset + self.sockets[socket_id].cores))


def _xeon_e5_1603v3_socket() -> SocketSpec:
    """The socket of Table 1: 4 cores, 2.8 GHz, 10 MB 20-way LLC."""
    return SocketSpec(
        cores=4,
        freq_khz=2_800_000,
        l1d=CacheSpec("L1D", 32 * KIB, 8),
        l1i=CacheSpec("L1I", 32 * KIB, 8),
        l2=CacheSpec("L2", 256 * KIB, 8),
        llc=CacheSpec("LLC", 10 * MIB, 20, shared=True),
    )


def paper_machine() -> MachineSpec:
    """The single-socket Dell machine of Table 1."""
    return MachineSpec(
        name="Dell / Intel Xeon E5-1603 v3",
        sockets=(_xeon_e5_1603v3_socket(),),
        memory_bytes=8_096 * MIB,
        latency=PAPER_LATENCIES,
    )


def numa_machine() -> MachineSpec:
    """The two-socket PowerEdge R420 used for Fig 9 (vCPU migration).

    Both sockets use the same per-socket geometry; what matters for the
    experiment is the remote-memory penalty paid after a migration.
    """
    socket = _xeon_e5_1603v3_socket()
    return MachineSpec(
        name="Dell PowerEdge R420 (2 sockets)",
        sockets=(socket, socket),
        memory_bytes=2 * 8_096 * MIB,
        latency=PAPER_LATENCIES,
    )
