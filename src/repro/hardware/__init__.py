"""Hardware models: machine specs (Table 1), topology, latencies."""

from .latency import LatencyModel, PAPER_LATENCIES
from .specs import (
    CacheSpec,
    KIB,
    MIB,
    MachineSpec,
    SocketSpec,
    numa_machine,
    paper_machine,
)
from .topology import Core, Machine, Socket

__all__ = [
    "CacheSpec",
    "Core",
    "KIB",
    "LatencyModel",
    "MIB",
    "Machine",
    "MachineSpec",
    "PAPER_LATENCIES",
    "Socket",
    "SocketSpec",
    "numa_machine",
    "paper_machine",
]
