"""Runtime hardware topology.

While :mod:`repro.hardware.specs` is pure static description, this module
holds the *mutable* runtime objects: cores that know what vCPU currently
occupies them, sockets that own a shared-LLC state object, and the machine
tying them together.  The hypervisor and schedulers manipulate these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from .specs import MachineSpec, SocketSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hypervisor.vcpu import VCpu


@dataclass
class Core:
    """A physical core.

    Attributes:
        core_id: global core index on the machine.
        socket_id: index of the socket containing this core.
        running: the vCPU currently executing here, or None when idle.
    """

    core_id: int
    socket_id: int
    running: Optional["VCpu"] = None

    @property
    def is_idle(self) -> bool:
        return self.running is None


class Socket:
    """A runtime socket: cores plus the shared-LLC contention domain.

    The socket owns ``llc_domain``, set by the machine builder to the
    shared-cache occupancy model (see :mod:`repro.cachesim.occupancy`):
    every vCPU running on any core of this socket inserts into and evicts
    from that one domain, which is precisely what makes the LLC a shared,
    non-partitionable resource in the simulation.
    """

    def __init__(self, socket_id: int, spec: SocketSpec, first_core_id: int) -> None:
        self.socket_id = socket_id
        self.spec = spec
        self.cores: List[Core] = [
            Core(core_id=first_core_id + i, socket_id=socket_id)
            for i in range(spec.cores)
        ]
        # Set by Machine after the cache model is built.
        self.llc_domain = None

    def idle_cores(self) -> List[Core]:
        """Cores with nothing running on them."""
        return [core for core in self.cores if core.is_idle]

    def running_vcpus(self) -> List["VCpu"]:
        """vCPUs currently executing on this socket."""
        return [core.running for core in self.cores if core.running is not None]


class Machine:
    """A runtime machine built from a :class:`MachineSpec`."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.sockets: List[Socket] = []
        first_core = 0
        for socket_id, socket_spec in enumerate(spec.sockets):
            self.sockets.append(Socket(socket_id, socket_spec, first_core))
            first_core += socket_spec.cores
        self.cores: List[Core] = [
            core for socket in self.sockets for core in socket.cores
        ]
        self._core_by_id: Dict[int, Core] = {c.core_id: c for c in self.cores}

    @property
    def total_cores(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        """Look up a core by global id."""
        try:
            return self._core_by_id[core_id]
        except KeyError:
            raise ValueError(
                f"core {core_id} does not exist (machine has "
                f"{self.total_cores} cores)"
            ) from None

    def socket_of(self, core_id: int) -> Socket:
        """Socket object containing ``core_id``."""
        return self.sockets[self.core(core_id).socket_id]

    def running_vcpus(self) -> List["VCpu"]:
        """All vCPUs currently on a core, machine-wide."""
        return [core.running for core in self.cores if core.running is not None]
