"""Memory-hierarchy access latencies.

The paper measures, with lmbench, approximately 4 cycles for L1, 12 for
L2, 45 for LLC and 180 for main memory on the experimental machine
(Section 2.2.4).  These numbers are the backbone of the performance model:
the cost of an access is the latency of the level that finally services it.

For the NUMA experiments (Fig 9) a remote-memory latency applies when a
vCPU runs on one socket while its pages live on another; the paper reports
up to ~12% degradation for memory-bound applications, which a ~1.7x remote
penalty reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Per-level access latencies in core cycles.

    Attributes:
        l1_cycles: latency of an access serviced by the L1 cache.
        l2_cycles: latency of an access serviced by the L2 cache.
        llc_cycles: latency of an access serviced by the shared LLC.
        memory_cycles: latency of an access serviced by local DRAM.
        remote_memory_cycles: latency of an access serviced by DRAM
            attached to a *different* socket (NUMA remote access).
    """

    l1_cycles: int = 4
    l2_cycles: int = 12
    llc_cycles: int = 45
    memory_cycles: int = 180
    remote_memory_cycles: int = 300

    def __post_init__(self) -> None:
        ordered = (
            self.l1_cycles,
            self.l2_cycles,
            self.llc_cycles,
            self.memory_cycles,
        )
        if any(lat <= 0 for lat in ordered):
            raise ValueError(f"latencies must be positive: {ordered}")
        if sorted(ordered) != list(ordered):
            raise ValueError(
                "latencies must increase with hierarchy depth: "
                f"L1={self.l1_cycles} L2={self.l2_cycles} "
                f"LLC={self.llc_cycles} MEM={self.memory_cycles}"
            )
        if self.remote_memory_cycles < self.memory_cycles:
            raise ValueError(
                "remote memory cannot be faster than local memory: "
                f"{self.remote_memory_cycles} < {self.memory_cycles}"
            )

    def memory_cycles_for(self, remote: bool) -> int:
        """DRAM latency, picking remote vs local."""
        return self.remote_memory_cycles if remote else self.memory_cycles

    def llc_miss_penalty(self, remote: bool = False) -> int:
        """Extra cycles an LLC miss costs over an LLC hit."""
        return self.memory_cycles_for(remote) - self.llc_cycles


#: Latencies measured on the paper's Xeon E5-1603 v3 (Section 2.2.4).
PAPER_LATENCIES = LatencyModel()
