"""Principled offline downsampling for full-resolution streams.

The streaming sink (:mod:`repro.telemetry.stream`) captures every
point; figures and report tables want a few hundred.  The *online*
reservoir's stride-doubling decimation is the right tool while a run is
live (O(1), deterministic), but offline we can afford better:

* :func:`downsample_lttb` — Largest-Triangle-Three-Buckets (Steinarsson
  2013): picks, per bucket, the point forming the largest triangle with
  the previously kept point and the next bucket's average, preserving
  visual extrema (spikes, cliffs) that plain striding erases.  The
  canonical choice for plotting.
* :func:`downsample_stride_mean` — fixed buckets, mean tick and mean
  value per bucket: the right tool when downstream code *averages*
  anyway (an unbiased coarse series, at the cost of flattened spikes).

Both are pure functions of their inputs — no RNG, no wall clock — so a
downsampled series is as reproducible as the stream it came from, and
ties break deterministically (first point wins).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class DownsampleError(ValueError):
    """Raised on invalid downsampling inputs."""


def _check_inputs(
    ticks: Sequence[int], values: Sequence[float], n_out: int
) -> None:
    if len(ticks) != len(values):
        raise DownsampleError(
            f"length mismatch: {len(ticks)} ticks vs {len(values)} values"
        )
    if n_out < 2:
        raise DownsampleError(f"n_out must be >= 2, got {n_out}")


def downsample_lttb(
    ticks: Sequence[int], values: Sequence[float], n_out: int
) -> Tuple[List[int], List[float]]:
    """Largest-Triangle-Three-Buckets to at most ``n_out`` points.

    The first and last points are always kept.  Interior points are
    partitioned into ``n_out - 2`` equal buckets; from each bucket the
    point maximising the triangle area spanned by (previously kept
    point, candidate, next bucket's centroid) is kept.  A series with
    ``<= n_out`` points is returned unchanged (copied).  Deterministic:
    equal areas keep the earliest candidate.
    """
    _check_inputs(ticks, values, n_out)
    n = len(ticks)
    if n <= n_out:
        return list(ticks), list(values)
    out_ticks: List[int] = [ticks[0]]
    out_values: List[float] = [values[0]]
    buckets = n_out - 2
    # Interior points [1, n-1) split into `buckets` equal-width ranges.
    span = (n - 2) / buckets
    kept = 0  # index of the previously kept point
    for bucket in range(buckets):
        start = 1 + int(bucket * span)
        stop = 1 + int((bucket + 1) * span)
        stop = min(stop, n - 1)
        if start >= stop:
            continue
        # Centroid of the *next* bucket (or the final point).
        next_start = stop
        next_stop = 1 + int((bucket + 2) * span) if bucket + 1 < buckets else n - 1
        next_stop = min(max(next_stop, next_start + 1), n)
        count = next_stop - next_start
        avg_tick = sum(ticks[next_start:next_stop]) / count
        avg_value = sum(values[next_start:next_stop]) / count
        base_tick = float(ticks[kept])
        base_value = values[kept]
        best_index = start
        best_area = -1.0
        for index in range(start, stop):
            area = abs(
                (base_tick - avg_tick) * (values[index] - base_value)
                - (base_tick - float(ticks[index])) * (avg_value - base_value)
            )
            if area > best_area:
                best_area = area
                best_index = index
        out_ticks.append(ticks[best_index])
        out_values.append(values[best_index])
        kept = best_index
    out_ticks.append(ticks[-1])
    out_values.append(values[-1])
    return out_ticks, out_values


def downsample_stride_mean(
    ticks: Sequence[int], values: Sequence[float], n_out: int
) -> Tuple[List[int], List[float]]:
    """Equal-width bucket means to at most ``n_out`` points.

    Each bucket contributes one point: the (floor-)mean tick and the
    mean value of its members.  Unlike decimation, every input point
    influences the output, so sums and means computed downstream are
    unbiased.  A series with ``<= n_out`` points is returned unchanged
    (copied).
    """
    _check_inputs(ticks, values, n_out)
    n = len(ticks)
    if n <= n_out:
        return list(ticks), list(values)
    out_ticks: List[int] = []
    out_values: List[float] = []
    span = n / n_out
    for bucket in range(n_out):
        start = int(bucket * span)
        stop = min(int((bucket + 1) * span), n)
        if bucket == n_out - 1:
            stop = n
        if start >= stop:
            continue
        count = stop - start
        out_ticks.append(int(sum(ticks[start:stop]) // count))
        out_values.append(sum(values[start:stop]) / count)
    return out_ticks, out_values


__all__ = [
    "DownsampleError",
    "downsample_lttb",
    "downsample_stride_mean",
]
