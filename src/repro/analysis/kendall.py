"""Kendall's tau rank correlation (implemented from scratch).

Section 4.2 uses Kendall's tau [36] to decide which pollution indicator's
ordering is closer to the real aggressiveness ordering.  We implement the
tau-a statistic over two orderings of the same items: the fraction of
concordant minus discordant pairs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def _rank_map(order: Sequence[T]) -> Dict[T, int]:
    ranks = {}
    for rank, item in enumerate(order):
        if item in ranks:
            raise ValueError(f"duplicate item in ordering: {item!r}")
        ranks[item] = rank
    return ranks


def kendall_tau(order_a: Sequence[T], order_b: Sequence[T]) -> float:
    """Kendall's tau-a between two orderings of the same item set.

    Returns +1.0 for identical orderings, -1.0 for exactly reversed ones.
    Raises if the orderings do not contain the same items.
    """
    if len(order_a) != len(order_b):
        raise ValueError(
            f"orderings differ in length: {len(order_a)} vs {len(order_b)}"
        )
    if len(order_a) < 2:
        raise ValueError("need at least two items to correlate")
    ranks_a = _rank_map(order_a)
    ranks_b = _rank_map(order_b)
    if set(ranks_a) != set(ranks_b):
        raise ValueError(
            "orderings must contain the same items; "
            f"only-in-a={set(ranks_a) - set(ranks_b)}, "
            f"only-in-b={set(ranks_b) - set(ranks_a)}"
        )
    items = list(ranks_a)
    concordant = 0
    discordant = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a_sign = ranks_a[items[i]] - ranks_a[items[j]]
            b_sign = ranks_b[items[i]] - ranks_b[items[j]]
            product = a_sign * b_sign
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    num_pairs = len(items) * (len(items) - 1) // 2
    return (concordant - discordant) / num_pairs


def ranking_from_scores(scores: Dict[T, float], descending: bool = True) -> List[T]:
    """Items ordered by score (ties broken by item repr for determinism)."""
    return sorted(
        scores,
        key=lambda item: (-scores[item] if descending else scores[item], repr(item)),
    )
