"""Aggressiveness campaigns (the machinery behind Figs 4 and 11).

Section 4.2's methodology:

1. run each application **alone** and compute its pollution indicators —
   the naive LLCM (misses per kilo-instruction of the sampling window) and
   equation 1 (misses per millisecond);
2. run each application **in parallel with each other application** and
   measure the performance degradation it inflicts; the application's
   *real aggressiveness* is the average degradation it causes;
3. compare the indicator-induced orderings to the real one with Kendall's
   tau.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.equation import llc_cap_act, llcm_indicator
# Submodule imports (not the repro.scenario package) to stay cycle-free:
# repro.scenario.runner pulls in repro.analysis.reporting.
from repro.scenario.materialize import materialize
from repro.scenario.spec import (
    MachineSpecChoice,
    ScenarioSpec,
    VmSpec,
    WorkloadSpec,
)

from .kendall import kendall_tau, ranking_from_scores
from .metrics import degradation_percent


@dataclass
class SoloProfile:
    """Indicators measured while an application runs alone."""

    app: str
    ipc: float
    llcm: float       # misses per kilo-instruction
    equation1: float  # misses per millisecond


@dataclass
class AggressivenessReport:
    """Everything Fig 4 plots for one application."""

    app: str
    solo: SoloProfile
    #: victim app -> degradation (%) this app caused in parallel co-run.
    degradation_caused: Dict[str, float] = field(default_factory=dict)

    @property
    def real_aggressiveness(self) -> float:
        """Average degradation caused across all victims."""
        if not self.degradation_caused:
            return 0.0
        return sum(self.degradation_caused.values()) / len(self.degradation_caused)


@dataclass
class CampaignConfig:
    """Knobs of an aggressiveness campaign."""

    warmup_ticks: int = 20
    measure_ticks: int = 60
    machine_preset: str = "paper"


def run_solo(app: str, config: Optional[CampaignConfig] = None) -> SoloProfile:
    """Run ``app`` alone on core 0 and measure its indicators."""
    if config is None:
        config = CampaignConfig()
    built = materialize(_solo_spec(app, config))
    system = built.system
    vm = built.vm(app)
    system.run_ticks(config.warmup_ticks)
    vm.reset_metrics()
    system.run_ticks(config.measure_ticks)
    vcpu = vm.vcpus[0]
    return SoloProfile(
        app=app,
        ipc=vcpu.ipc,
        llcm=llcm_indicator(vcpu.llc_misses, vcpu.instructions_retired),
        equation1=llc_cap_act(vcpu.llc_misses, vcpu.cycles_run, system.freq_khz),
    )


def _solo_spec(app: str, config: CampaignConfig) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"aggressiveness-solo-{app}",
        machine=MachineSpecChoice(preset=config.machine_preset),
        vms=(
            VmSpec(name=app, workload=WorkloadSpec(app=app), pinned_cores=(0,)),
        ),
    )


def run_pair_degradation(
    aggressor: str,
    victim: str,
    victim_solo_ipc: float,
    config: Optional[CampaignConfig] = None,
) -> float:
    """Degradation (%) ``aggressor`` inflicts on ``victim`` in parallel.

    The two VMs run pinned to different cores of the same socket — the
    paper's "parallel execution" situation.
    """
    if config is None:
        config = CampaignConfig()
    built = materialize(
        ScenarioSpec(
            name=f"aggressiveness-{aggressor}-vs-{victim}",
            machine=MachineSpecChoice(preset=config.machine_preset),
            vms=(
                VmSpec(
                    name=victim,
                    workload=WorkloadSpec(app=victim),
                    pinned_cores=(0,),
                ),
                VmSpec(
                    name=aggressor,
                    workload=WorkloadSpec(app=aggressor),
                    pinned_cores=(1,),
                ),
            ),
        )
    )
    system = built.system
    victim_vm = built.vm(victim)
    system.run_ticks(config.warmup_ticks)
    victim_vm.reset_metrics()
    system.run_ticks(config.measure_ticks)
    return degradation_percent(victim_solo_ipc, victim_vm.vcpus[0].ipc)


def run_campaign(
    apps: Sequence[str], config: Optional[CampaignConfig] = None
) -> Dict[str, AggressivenessReport]:
    """Full Fig 4 campaign over ``apps``: solo profiles + all pairs."""
    if config is None:
        config = CampaignConfig()
    if len(set(apps)) != len(apps):
        raise ValueError(f"duplicate applications in {apps}")
    solos = {app: run_solo(app, config) for app in apps}
    reports = {app: AggressivenessReport(app=app, solo=solos[app]) for app in apps}
    for aggressor in apps:
        for victim in apps:
            if victim == aggressor:
                continue
            caused = run_pair_degradation(
                aggressor, victim, solos[victim].ipc, config
            )
            reports[aggressor].degradation_caused[victim] = caused
    return reports


@dataclass
class OrderingComparison:
    """The Fig 4 conclusion: which indicator tracks reality better."""

    real_order: List[str]
    llcm_order: List[str]
    equation1_order: List[str]
    tau_llcm: float
    tau_equation1: float

    @property
    def equation1_wins(self) -> bool:
        """True when equation 1's ordering is closer to the real one."""
        return self.tau_equation1 > self.tau_llcm


def compare_orderings(
    reports: Dict[str, AggressivenessReport]
) -> OrderingComparison:
    """Derive o1/o2/o3 and their Kendall taus from campaign reports."""
    real = ranking_from_scores(
        {app: r.real_aggressiveness for app, r in reports.items()}
    )
    llcm = ranking_from_scores({app: r.solo.llcm for app, r in reports.items()})
    eq1 = ranking_from_scores(
        {app: r.solo.equation1 for app, r in reports.items()}
    )
    return OrderingComparison(
        real_order=real,
        llcm_order=llcm,
        equation1_order=eq1,
        tau_llcm=kendall_tau(real, llcm),
        tau_equation1=kendall_tau(real, eq1),
    )
