"""Analysis: Kendall's tau, degradation metrics, aggressiveness campaigns
and plain-text reporting."""

from .aggressiveness import (
    AggressivenessReport,
    CampaignConfig,
    OrderingComparison,
    SoloProfile,
    compare_orderings,
    run_campaign,
    run_pair_degradation,
    run_solo,
)
from .calibration import (
    CalibrationEntry,
    CalibrationReport,
    SOLO_TARGETS,
    format_calibration,
    run_calibration,
)
from .kendall import kendall_tau, ranking_from_scores
from .metrics import (
    SeriesStats,
    degradation_percent,
    normalized_performance,
    slowdown_percent,
)
from .reporting import format_series, format_table
from .statistics import LinearFit, linear_fit, mean_confidence_interval

__all__ = [
    "AggressivenessReport",
    "CalibrationEntry",
    "CalibrationReport",
    "CampaignConfig",
    "LinearFit",
    "SOLO_TARGETS",
    "format_calibration",
    "linear_fit",
    "mean_confidence_interval",
    "run_calibration",
    "OrderingComparison",
    "SeriesStats",
    "SoloProfile",
    "compare_orderings",
    "degradation_percent",
    "format_series",
    "format_table",
    "kendall_tau",
    "normalized_performance",
    "ranking_from_scores",
    "run_campaign",
    "run_pair_degradation",
    "run_solo",
    "slowdown_percent",
]
