"""Analysis: Kendall's tau, degradation metrics, aggressiveness campaigns,
downsampling and plain-text reporting.

The ``repro report`` engine lives in :mod:`repro.analysis.report` and is
*not* re-exported here: it imports the experiments layer (which imports
this package), so it binds late — the CLI imports it directly.
"""

from .aggressiveness import (
    AggressivenessReport,
    CampaignConfig,
    OrderingComparison,
    SoloProfile,
    compare_orderings,
    run_campaign,
    run_pair_degradation,
    run_solo,
)
from .calibration import (
    CalibrationEntry,
    CalibrationReport,
    SOLO_TARGETS,
    format_calibration,
    run_calibration,
)
from .downsample import (
    DownsampleError,
    downsample_lttb,
    downsample_stride_mean,
)
from .kendall import kendall_tau, ranking_from_scores
from .metrics import (
    SeriesStats,
    degradation_percent,
    normalized_performance,
    slowdown_percent,
)
from .reporting import format_series, format_table
from .statistics import (
    LinearFit,
    linear_fit,
    mean_confidence_interval,
    student_t_critical,
)

__all__ = [
    "AggressivenessReport",
    "CalibrationEntry",
    "CalibrationReport",
    "CampaignConfig",
    "DownsampleError",
    "LinearFit",
    "SOLO_TARGETS",
    "downsample_lttb",
    "downsample_stride_mean",
    "format_calibration",
    "linear_fit",
    "mean_confidence_interval",
    "run_calibration",
    "student_t_critical",
    "OrderingComparison",
    "SeriesStats",
    "SoloProfile",
    "compare_orderings",
    "degradation_percent",
    "format_series",
    "format_table",
    "kendall_tau",
    "normalized_performance",
    "ranking_from_scores",
    "run_campaign",
    "run_pair_degradation",
    "run_solo",
    "slowdown_percent",
]
