"""Calibration report: profile constants vs their paper-derived targets.

The workload profiles in :mod:`repro.workloads.profiles` are the
reproduction's most calibration-sensitive artefact.  This module makes
the calibration auditable: it measures every application's solo
indicators on the actual machine simulation, checks them against the
documented targets, and verifies all three Fig 4 orderings — so any
future profile edit that silently breaks the reproduction fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workloads.profiles import (
    FIG4_APPLICATIONS,
    PAPER_ORDER_EQUATION1,
    PAPER_ORDER_LLCM,
)

from .aggressiveness import CampaignConfig, SoloProfile, run_solo
from .kendall import ranking_from_scores
from .reporting import format_table

#: Solo calibration targets: app -> (LLCM mpki, equation-1 misses/ms).
#: These are the values the profile constants were solved for; the
#: orderings they imply are the paper's o2 and o3.
SOLO_TARGETS: Dict[str, Tuple[float, float]] = {
    "milc": (330.0, 268_000.0),
    "lbm": (300.0, 419_000.0),
    "soplex": (260.0, 232_000.0),
    "mcf": (230.0, 260_000.0),
    "blockie": (190.0, 400_000.0),
    "gcc": (120.0, 130_000.0),
    "omnetpp": (90.0, 125_000.0),
    "xalan": (60.0, 70_000.0),
    "astar": (35.0, 40_000.0),
    "bzip": (18.0, 20_000.0),
}


@dataclass
class CalibrationEntry:
    """Measured vs target indicators for one application."""

    app: str
    measured: SoloProfile
    target_llcm: float
    target_equation1: float

    @property
    def llcm_error_percent(self) -> float:
        if self.target_llcm == 0:
            return 0.0
        return 100.0 * abs(self.measured.llcm - self.target_llcm) / self.target_llcm

    @property
    def equation1_error_percent(self) -> float:
        if self.target_equation1 == 0:
            return 0.0
        return (
            100.0
            * abs(self.measured.equation1 - self.target_equation1)
            / self.target_equation1
        )


@dataclass
class CalibrationReport:
    """Full calibration audit."""

    entries: List[CalibrationEntry] = field(default_factory=list)

    @property
    def llcm_order_ok(self) -> bool:
        measured = {e.app: e.measured.llcm for e in self.entries}
        return ranking_from_scores(measured) == PAPER_ORDER_LLCM

    @property
    def equation1_order_ok(self) -> bool:
        measured = {e.app: e.measured.equation1 for e in self.entries}
        return ranking_from_scores(measured) == PAPER_ORDER_EQUATION1

    @property
    def max_error_percent(self) -> float:
        if not self.entries:
            return 0.0
        return max(
            max(e.llcm_error_percent, e.equation1_error_percent)
            for e in self.entries
        )

    def entry(self, app: str) -> CalibrationEntry:
        for e in self.entries:
            if e.app == app:
                return e
        raise KeyError(app)


def run_calibration(config: Optional[CampaignConfig] = None) -> CalibrationReport:
    """Measure every Fig 4 application solo and compare to targets."""
    if config is None:
        config = CampaignConfig()
    report = CalibrationReport()
    for app in FIG4_APPLICATIONS:
        target_llcm, target_eq1 = SOLO_TARGETS[app]
        report.entries.append(
            CalibrationEntry(
                app=app,
                measured=run_solo(app, config),
                target_llcm=target_llcm,
                target_equation1=target_eq1,
            )
        )
    return report


def format_calibration(report: CalibrationReport) -> str:
    rows = [
        [
            e.app,
            e.measured.llcm,
            e.target_llcm,
            e.llcm_error_percent,
            e.measured.equation1,
            e.target_equation1,
            e.equation1_error_percent,
        ]
        for e in sorted(report.entries, key=lambda e: -e.measured.equation1)
    ]
    table = format_table(
        ["app", "LLCM", "LLCM target", "err %", "eq1", "eq1 target", "err %"],
        rows,
        title="Workload-profile calibration audit",
    )
    return table + (
        f"\no2 (LLCM) ordering ok: {report.llcm_order_ok}; "
        f"o3 (eq1) ordering ok: {report.equation1_order_ok}; "
        f"max error {report.max_error_percent:.1f}%"
    )
