"""Plain-text reporting helpers.

The benchmark harness prints each reproduced table/figure as an aligned
ASCII table so runs can be compared to the paper at a glance (and so
EXPERIMENTS.md can be regenerated mechanically).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value) -> str:
    """Render one cell: floats get a compact fixed precision."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render a (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    return format_table([x_label, y_label], zip(xs, ys), title=name)
