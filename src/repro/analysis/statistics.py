"""Small statistics helpers (implemented from scratch).

Linear regression backs the Fig 3 claim ("degradation linearly increases
with the disruptor's computing power") with a quantitative R²; the
confidence-interval helper summarises repeated measurements in the
examples and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares fit of y = slope * x + intercept."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """OLS fit with the coefficient of determination.

    Raises on degenerate input (fewer than two points, or zero variance
    in x).  A constant-y series fits perfectly with slope 0.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are all identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for y in ys)
    if ss_total == 0:
        r_squared = 1.0  # constant y: the flat line explains everything
    else:
        ss_residual = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
        )
        r_squared = 1.0 - ss_residual / ss_total
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """(mean, low, high) using a normal approximation.

    ``z`` defaults to the 95% quantile.  With a single sample the
    interval collapses to the point.
    """
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = z * math.sqrt(variance / n)
    return mean, mean - half_width, mean + half_width
