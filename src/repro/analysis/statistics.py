"""Small statistics helpers (implemented from scratch).

Linear regression backs the Fig 3 claim ("degradation linearly increases
with the disruptor's computing power") with a quantitative R²; the
confidence-interval helper summarises repeated measurements in the
examples and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares fit of y = slope * x + intercept."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """OLS fit with the coefficient of determination.

    Raises on degenerate input (fewer than two points, or zero variance
    in x).  A constant-y series fits perfectly with slope 0.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are all identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for y in ys)
    if ss_total == 0:
        r_squared = 1.0  # constant y: the flat line explains everything
    else:
        ss_residual = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
        )
        r_squared = 1.0 - ss_residual / ss_total
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


#: Two-sided Student-t critical values t_{(1+c)/2}(df) for df 1..30,
#: per supported confidence level.  Exact to the printed precision of
#: the standard tables; beyond df 30 the Cornish-Fisher expansion in
#: :func:`student_t_critical` is accurate to < 1e-3.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
        2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
        2.763, 2.756, 2.750,
    ),
}

#: Standard-normal two-sided quantiles z_{(1+c)/2} for the same levels.
_Z_VALUES: Dict[float, float] = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def student_t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Dependency-free: an exact table covers df 1..30 (where the t and
    normal quantiles genuinely diverge — at df 3 the 95% value is 3.18,
    not 1.96); larger df use the Cornish-Fisher series expansion of the
    t quantile around the normal one, which is accurate to < 1e-3 from
    df 30 on and converges to z as df grows.  Supported confidence
    levels: 0.90, 0.95, 0.99.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE.get(confidence)
    if table is None:
        supported = ", ".join(f"{c:g}" for c in sorted(_T_TABLE))
        raise ValueError(
            f"unsupported confidence level {confidence!r}; "
            f"supported: {supported} (or pass an explicit z=)"
        )
    if df <= len(table):
        return table[df - 1]
    z = _Z_VALUES[confidence]
    # Cornish-Fisher expansion of the t quantile in powers of 1/df.
    g1 = (z**3 + z) / 4.0
    g2 = (5.0 * z**5 + 16.0 * z**3 + 3.0 * z) / 96.0
    g3 = (3.0 * z**7 + 19.0 * z**5 + 17.0 * z**3 - 15.0 * z) / 384.0
    return z + g1 / df + g2 / df**2 + g3 / df**3


def mean_confidence_interval(
    values: Sequence[float],
    z: Optional[float] = None,
    confidence: float = 0.95,
) -> Tuple[float, float, float]:
    """(mean, low, high) for the mean of ``values``.

    By default the half-width uses the Student-t critical value at
    ``n - 1`` degrees of freedom — the correct small-sample quantile.
    The previous normal approximation (z = 1.96 at every n) was badly
    anti-conservative for the 3–9 repeats bench and the examples
    actually take: at n = 4 the true 95% multiplier is 3.18, so the old
    intervals covered the mean barely ~88% of the time.  Pass an
    explicit ``z=`` to force a normal-quantile interval (the documented
    escape hatch, and the pre-fix behavior with ``z=1.96``).  With a
    single sample the interval collapses to the point.
    """
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    critical = z if z is not None else student_t_critical(n - 1, confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = critical * math.sqrt(variance / n)
    return mean, mean - half_width, mean + half_width
