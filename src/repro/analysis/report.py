"""The ``repro report`` engine (schema ``repro.report/1``).

Every other subcommand *produces* artifacts: ``repro run --json``
campaign directories of ``repro.artifact/1`` files, ``repro herd`` a
journal plus merged summary, ``repro serve`` a ``repro.service/1``
soak summary, ``--stream`` full-resolution ``repro.telemetry.stream/1``
directories.  This module is the layer that *reads* them all back and
turns a pile of directories into the paper-shaped deliverables:

* **comparison tables** — sweep points (``name@axis=value,...``) are
  grouped by base experiment and pivoted into one row per point with
  the sweep axes as columns plus the telemetry counters that actually
  vary across the group (scheduler x fault-rate x fleet-size grids
  become readable degradation tables);
* **service-run tables** — one row per ``repro.service/1`` soak;
* **herd status** — journal replay counts and the quarantined set;
* **per-series summaries** — count/mean/min/max plus deterministic
  offline downsampling (:mod:`repro.analysis.downsample`) for stream
  series, so a million-tick trace plots as a few hundred points.

Determinism is a hard requirement, not a nicety: the report of a
directory is a pure function of its *simulated* contents.  Wall times —
the only nondeterministic field an artifact carries — are excluded
everywhere, so two runs of the same campaign produce byte-identical
reports (pinned by tests and the CI report-smoke job).

This module is intentionally **not** imported by
``repro.analysis.__init__``: it imports the experiments/campaign layer
(which itself imports ``repro.analysis``), so it binds late — the CLI
imports it inside :func:`repro.cli.run_report`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from repro.experiments.campaign import scan_artifacts
from repro.herd.journal import journal_path, replay_journal
from repro.service.loop import SERVICE_SCHEMA
from repro.telemetry.stream import is_stream_dir, read_stream

from .downsample import downsample_lttb, downsample_stride_mean
from .reporting import format_table

#: Schema identifier of the emitted report document.
REPORT_SCHEMA = "repro.report/1"

#: Cap on auto-selected counter columns per comparison table.
MAX_AUTO_METRICS = 8

#: Default downsampled points per stream series in the JSON document.
DEFAULT_MAX_POINTS = 256


class ReportError(ValueError):
    """Raised on unusable report inputs (no sources, bad directories)."""


# -- ingestion ---------------------------------------------------------------


def parse_axes(name: str) -> Tuple[str, Dict[str, str]]:
    """Split a sweep-point name into ``(base, axes)``.

    ``chaos-sweep@faults.uniform_rate=0.5,scheduler.kind=ks4xen`` maps
    to ``("chaos-sweep", {"faults.uniform_rate": "0.5", ...})``; a name
    without ``@`` (or with a malformed suffix) has no axes.  Axis values
    stay strings — the sweep grid wrote them, so exact text is the
    robust identity.
    """
    base, sep, suffix = name.partition("@")
    if not sep or not suffix:
        return name, {}
    axes: Dict[str, str] = {}
    for part in suffix.split(","):
        key, eq, value = part.partition("=")
        if not eq or not key:
            return name, {}
        axes[key] = value
    return base, axes


def _axis_sort_key(value: str) -> Tuple[int, float, str]:
    """Numeric-aware, deterministic ordering for axis values."""
    try:
        return (0, float(value), value)
    except ValueError:
        return (1, 0.0, value)


def ingest_sources(paths: Sequence[str]) -> Dict[str, Any]:
    """Load every recognized artifact kind under ``paths``.

    Each path may be (simultaneously) an artifact directory, a herd
    campaign directory, a holder of ``repro.service/1`` summaries, a
    stream directory, or a parent of stream directories — every kind
    found is ingested.  A path that yields nothing is an error: a
    report over silently-empty sources would look authoritative while
    covering nothing.
    """
    sources: List[Dict[str, Any]] = []
    artifacts: List[Dict[str, Any]] = []
    corrupt: List[str] = []
    service_runs: List[Dict[str, Any]] = []
    herds: List[Dict[str, Any]] = []
    streams: List[Tuple[str, Any]] = []
    for path in paths:
        if not os.path.isdir(path):
            raise ReportError(f"no such directory: {path}")
        kinds: List[str] = []
        found_artifacts, found_corrupt = scan_artifacts(path)
        if found_artifacts or found_corrupt:
            kinds.append("artifacts")
            artifacts.extend(found_artifacts)
            corrupt.extend(sorted(found_corrupt))
        found_services = _scan_service_summaries(path)
        if found_services:
            kinds.append("service")
            service_runs.extend(found_services)
        if os.path.isfile(journal_path(path)):
            kinds.append("herd")
            herds.append(_herd_entry(path))
        for stream_dir in _scan_stream_dirs(path):
            if "stream" not in kinds:
                kinds.append("stream")
            streams.append((stream_dir, read_stream(stream_dir)))
        if not kinds:
            raise ReportError(
                f"nothing reportable in {path}: no repro.artifact/1 "
                "files, service summaries, herd journal or stream chunks"
            )
        sources.append({"path": path, "kinds": kinds})
    return {
        "sources": sources,
        "artifacts": artifacts,
        "corrupt": corrupt,
        "service_runs": service_runs,
        "herds": herds,
        "streams": streams,
    }


def _scan_service_summaries(path: str) -> List[Dict[str, Any]]:
    summaries: List[Dict[str, Any]] = []
    for entry in sorted(os.listdir(path)):
        if not entry.endswith(".json"):
            continue
        try:
            with open(
                os.path.join(path, entry), "r", encoding="utf-8"
            ) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # scan_artifacts already reports corrupt JSON
        if isinstance(data, dict) and data.get("schema") == SERVICE_SCHEMA:
            data["_file"] = entry
            summaries.append(data)
    return summaries


def _scan_stream_dirs(path: str) -> List[str]:
    """Stream directories at ``path``, one or two levels below it.

    Depth two covers the natural campaign layout
    (``out/streams/<experiment>/chunk-*.jsonl`` next to ``out/*.json``)
    so ``repro report out/`` sees the streams without a second argument.
    """
    if is_stream_dir(path):
        return [path]
    found: List[str] = []
    for entry in sorted(os.listdir(path)):
        child = os.path.join(path, entry)
        if is_stream_dir(child):
            found.append(child)
        elif os.path.isdir(child):
            found.extend(
                os.path.join(child, nested)
                for nested in sorted(os.listdir(child))
                if is_stream_dir(os.path.join(child, nested))
            )
    return found


def _herd_entry(path: str) -> Dict[str, Any]:
    state = replay_journal(journal_path(path))
    quarantined = sorted(
        record.name
        for record in state.points.values()
        if record.status == "quarantined"
    )
    return {
        "path": path,
        "clean": state.clean,
        "resumes": state.resumes,
        "counts": state.counts(),
        "quarantined": quarantined,
    }


# -- document assembly -------------------------------------------------------


def build_report(
    paths: Sequence[str],
    *,
    counters: Optional[Sequence[str]] = None,
    series_filter: Optional[Sequence[str]] = None,
    max_points: int = DEFAULT_MAX_POINTS,
    method: str = "lttb",
) -> Dict[str, Any]:
    """Assemble the ``repro.report/1`` document for ``paths``.

    ``counters`` fixes the comparison tables' metric columns (default:
    auto — the counters that vary across each group, capped at
    :data:`MAX_AUTO_METRICS`).  ``series_filter`` keeps only series
    whose name equals a filter or extends it across a dot boundary.
    ``max_points``/``method`` control the embedded downsampled arrays
    for stream series.
    """
    if max_points < 2:
        raise ReportError(f"max_points must be >= 2, got {max_points}")
    if method not in ("lttb", "stride-mean"):
        raise ReportError(
            f"unknown downsampling method {method!r}; "
            "use 'lttb' or 'stride-mean'"
        )
    loaded = ingest_sources(paths)
    experiments = [
        _experiment_entry(artifact) for artifact in loaded["artifacts"]
    ]
    experiments.sort(
        key=lambda entry: (
            entry["base"],
            [
                (key, _axis_sort_key(value))
                for key, value in sorted(entry["axes"].items())
            ],
            entry["name"],
        )
    )
    document: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "sources": loaded["sources"],
        "experiments": experiments,
        "comparisons": _build_comparisons(experiments, counters),
        "service_runs": [
            _service_entry(summary) for summary in loaded["service_runs"]
        ],
        "herds": loaded["herds"],
        "series": _build_series(
            loaded, series_filter, max_points, method
        ),
    }
    if loaded["corrupt"]:
        document["corrupt_artifacts"] = loaded["corrupt"]
    return document


def _experiment_entry(artifact: Dict[str, Any]) -> Dict[str, Any]:
    import hashlib

    name = str(artifact.get("name", ""))
    base, axes = parse_axes(name)
    report_text = artifact.get("report", "") or ""
    telemetry = artifact.get("telemetry", {}) or {}
    raw_counters = telemetry.get("counters", {}) or {}
    return {
        "name": name,
        "base": base,
        "axes": axes,
        "ok": bool(artifact.get("ok")),
        "error": artifact.get("error"),
        "report_sha256": hashlib.sha256(
            report_text.encode("utf-8")
        ).hexdigest(),
        "counters": {
            key: float(raw_counters[key]) for key in sorted(raw_counters)
        },
    }


def _build_comparisons(
    experiments: List[Dict[str, Any]],
    requested_counters: Optional[Sequence[str]],
) -> List[Dict[str, Any]]:
    """Pivot swept experiment groups into axis-by-metric tables."""
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for entry in experiments:
        if entry["axes"]:
            groups.setdefault(entry["base"], []).append(entry)
    comparisons: List[Dict[str, Any]] = []
    for base in sorted(groups):
        members = groups[base]
        if len(members) < 2:
            continue
        axes = sorted({key for entry in members for key in entry["axes"]})
        metrics = _metric_columns(members, requested_counters)
        rows = []
        for entry in members:
            rows.append(
                {
                    "name": entry["name"],
                    "axes": {
                        key: entry["axes"].get(key, "") for key in axes
                    },
                    "ok": entry["ok"],
                    "metrics": {
                        key: entry["counters"].get(key) for key in metrics
                    },
                }
            )
        rows.sort(
            key=lambda row: [
                _axis_sort_key(row["axes"][key]) for key in axes
            ]
        )
        comparisons.append(
            {"base": base, "axes": axes, "metrics": metrics, "rows": rows}
        )
    return comparisons


def _metric_columns(
    members: List[Dict[str, Any]],
    requested: Optional[Sequence[str]],
) -> List[str]:
    if requested:
        return sorted(dict.fromkeys(requested))
    # Auto mode: the counters that *vary* across the group carry the
    # comparison's information; constant ones are noise columns.
    names = sorted({
        name for entry in members for name in entry["counters"]
    })
    varying = []
    for name in names:
        seen = {entry["counters"].get(name) for entry in members}
        if len(seen) > 1:
            varying.append(name)
    return varying[:MAX_AUTO_METRICS]


#: repro.service/1 fields surfaced in the service-run table, in order.
SERVICE_FIELDS = (
    "ticks_run",
    "admitted",
    "rejected",
    "retired",
    "drained",
    "peak_live_vms",
    "final_live_vms",
    "retired_series_compactions",
)


def _service_entry(summary: Dict[str, Any]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "scenario": summary.get("scenario", summary.get("_file", "?")),
        "arrival_process": summary.get("arrival_process"),
        "admission_policy": summary.get("admission_policy"),
    }
    for field in SERVICE_FIELDS:
        entry[field] = summary.get(field)
    if "stream" in summary:
        entry["stream"] = summary["stream"]
    return entry


def _build_series(
    loaded: Dict[str, Any],
    series_filter: Optional[Sequence[str]],
    max_points: int,
    method: str,
) -> List[Dict[str, Any]]:
    downsampler = (
        downsample_lttb if method == "lttb" else downsample_stride_mean
    )
    entries: List[Dict[str, Any]] = []
    streamed: set = set()
    for directory, data in loaded["streams"]:
        label = os.path.basename(os.path.normpath(directory))
        for name in data.series_names():
            if not _series_selected(name, series_filter):
                continue
            streamed.add((label, name))
            series = data.series[name]
            entry = _series_summary(
                label, name, series.ticks, series.values
            )
            entry["kind"] = "stream"
            entry["resolution"] = "full"
            entry["clean"] = data.clean
            if len(series.ticks) > max_points:
                ds_ticks, ds_values = downsampler(
                    series.ticks, series.values, max_points
                )
                entry["downsampled"] = {
                    "method": method,
                    "ticks": ds_ticks,
                    "values": ds_values,
                }
            entries.append(entry)
    for artifact in loaded["artifacts"]:
        source = str(artifact.get("name", ""))
        telemetry = artifact.get("telemetry", {}) or {}
        all_series = telemetry.get("series", {}) or {}
        for name in sorted(all_series):
            if not _series_selected(name, series_filter):
                continue
            if (source, name) in streamed:
                # The stream is the same series at full resolution; the
                # artifact's bounded reservoir adds nothing.
                continue
            entry_data = all_series[name]
            entry = _series_summary(
                source,
                name,
                entry_data.get("ticks", []),
                entry_data.get("values", []),
            )
            dropped = int(entry_data.get("dropped", 0))
            entry["kind"] = "artifact"
            entry["resolution"] = (
                "full" if dropped == 0
                else f"1-in-{int(entry_data.get('stride', 1))}"
            )
            entries.append(entry)
    entries.sort(key=lambda entry: (entry["source"], entry["series"]))
    return entries


def _series_selected(
    name: str, series_filter: Optional[Sequence[str]]
) -> bool:
    if not series_filter:
        return True
    return any(
        name == wanted or name.startswith(wanted + ".")
        for wanted in series_filter
    )


def _series_summary(
    source: str, name: str, ticks: Sequence[int], values: Sequence[float]
) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "source": source,
        "series": name,
        "points": len(ticks),
    }
    if ticks:
        entry["first_tick"] = int(ticks[0])
        entry["last_tick"] = int(ticks[-1])
        entry["mean"] = sum(values) / len(values)
        entry["min"] = min(values)
        entry["max"] = max(values)
    return entry


# -- rendering ---------------------------------------------------------------


def render_json(document: Dict[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_text(document: Dict[str, Any]) -> str:
    """Aligned ASCII tables — the figure-class view."""
    blocks: List[str] = []
    for comparison in document["comparisons"]:
        headers = (
            list(comparison["axes"]) + ["ok"] + list(comparison["metrics"])
        )
        rows = []
        for row in comparison["rows"]:
            cells: List[Any] = [
                row["axes"][key] for key in comparison["axes"]
            ]
            cells.append("yes" if row["ok"] else "NO")
            for metric in comparison["metrics"]:
                value = row["metrics"][metric]
                cells.append("-" if value is None else value)
            rows.append(cells)
        blocks.append(
            format_table(
                headers, rows, title=f"comparison: {comparison['base']}"
            )
        )
    if document["service_runs"]:
        headers = ["scenario", "process", "admission"] + list(SERVICE_FIELDS)
        rows = []
        for entry in document["service_runs"]:
            rows.append(
                [
                    entry["scenario"],
                    entry.get("arrival_process") or "-",
                    entry.get("admission_policy") or "-",
                ]
                + [
                    "-" if entry.get(field) is None else entry[field]
                    for field in SERVICE_FIELDS
                ]
            )
        blocks.append(format_table(headers, rows, title="service runs"))
    for herd in document["herds"]:
        counts = herd["counts"]
        status_line = "  ".join(
            f"{status}={counts[status]}" for status in sorted(counts)
        )
        lines = [
            f"herd: {herd['path']}",
            f"  resumes={herd['resumes']}  clean={herd['clean']}",
            f"  {status_line}",
        ]
        if herd["quarantined"]:
            lines.append(
                "  quarantined: " + ", ".join(herd["quarantined"])
            )
        blocks.append("\n".join(lines))
    if document["series"]:
        headers = [
            "source", "series", "points", "resolution",
            "mean", "min", "max",
        ]
        rows = []
        for entry in document["series"]:
            rows.append(
                [
                    entry["source"],
                    entry["series"],
                    entry["points"],
                    entry.get("resolution", "-"),
                    entry.get("mean", "-"),
                    entry.get("min", "-"),
                    entry.get("max", "-"),
                ]
            )
        blocks.append(format_table(headers, rows, title="series"))
    if document.get("corrupt_artifacts"):
        blocks.append(
            "corrupt artifacts: "
            + ", ".join(document["corrupt_artifacts"])
        )
    if not blocks:
        blocks.append("nothing to report")
    return "\n\n".join(blocks) + "\n"


def render_csv(document: Dict[str, Any]) -> str:
    """CSV sections (one ``# title`` comment + header + rows each)."""
    lines: List[str] = []
    for comparison in document["comparisons"]:
        lines.append(f"# comparison: {comparison['base']}")
        headers = (
            list(comparison["axes"]) + ["ok"] + list(comparison["metrics"])
        )
        lines.append(",".join(_csv_cell(cell) for cell in headers))
        for row in comparison["rows"]:
            cells: List[Any] = [
                row["axes"][key] for key in comparison["axes"]
            ]
            cells.append("yes" if row["ok"] else "no")
            for metric in comparison["metrics"]:
                value = row["metrics"][metric]
                cells.append("" if value is None else value)
            lines.append(",".join(_csv_cell(cell) for cell in cells))
        lines.append("")
    if document["service_runs"]:
        lines.append("# service runs")
        headers = ["scenario", "process", "admission"] + list(SERVICE_FIELDS)
        lines.append(",".join(_csv_cell(cell) for cell in headers))
        for entry in document["service_runs"]:
            cells = [
                entry["scenario"],
                entry.get("arrival_process") or "",
                entry.get("admission_policy") or "",
            ] + [
                "" if entry.get(field) is None else entry[field]
                for field in SERVICE_FIELDS
            ]
            lines.append(",".join(_csv_cell(cell) for cell in cells))
        lines.append("")
    if document["series"]:
        lines.append("# series")
        headers = [
            "source", "series", "points", "resolution",
            "first_tick", "last_tick", "mean", "min", "max",
        ]
        lines.append(",".join(_csv_cell(cell) for cell in headers))
        for entry in document["series"]:
            cells = [
                entry["source"], entry["series"], entry["points"],
                entry.get("resolution", ""),
                entry.get("first_tick", ""), entry.get("last_tick", ""),
                entry.get("mean", ""), entry.get("min", ""),
                entry.get("max", ""),
            ]
            lines.append(",".join(_csv_cell(cell) for cell in cells))
        lines.append("")
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


def _csv_cell(value: Any) -> str:
    text = str(value)
    if any(ch in text for ch in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "csv": render_csv,
}


def run_report(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    output: Optional[str] = None,
    counters: Optional[Sequence[str]] = None,
    series_filter: Optional[Sequence[str]] = None,
    max_points: int = DEFAULT_MAX_POINTS,
    method: str = "lttb",
    out: Optional[IO[str]] = None,
) -> int:
    """The ``repro report`` subcommand body.

    Exit codes: 0 ok; 1 the report was produced but the sources carry
    damage (corrupt artifacts, torn streams, an unclean herd journal);
    2 unusable inputs.
    """
    import sys

    stream = out if out is not None else sys.stdout
    try:
        document = build_report(
            paths,
            counters=counters,
            series_filter=series_filter,
            max_points=max_points,
            method=method,
        )
    except ReportError as exc:
        sys.stderr.write(f"repro report: error: {exc}\n")
        return 2
    text = RENDERERS[fmt](document)
    if output is not None:
        from repro.util import atomic_write_text

        atomic_write_text(output, text)
        stream.write(f"report written to {output}\n")
    else:
        stream.write(text)
    damaged = bool(document.get("corrupt_artifacts"))
    damaged = damaged or any(
        not entry.get("clean", True)
        for entry in document["series"]
        if entry.get("resolution") == "full"
    )
    damaged = damaged or any(
        not herd["clean"] for herd in document["herds"]
    )
    return 1 if damaged else 0


__all__ = [
    "DEFAULT_MAX_POINTS",
    "MAX_AUTO_METRICS",
    "REPORT_SCHEMA",
    "ReportError",
    "build_report",
    "ingest_sources",
    "parse_axes",
    "render_csv",
    "render_json",
    "render_text",
    "run_report",
]
