"""Performance metrics used across the experiments.

The paper's headline metric is IPC-based *performance degradation*
(Section 2.2.3): how much slower an application runs in some situation
than when it runs alone.  Normalised performance (Figs 5, 6) is its
complement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def degradation_percent(baseline_ipc: float, observed_ipc: float) -> float:
    """Percent performance degradation relative to a solo baseline.

    0 means unaffected; 50 means the application retired instructions at
    half its solo rate while running.  Negative values (speed-ups) are
    clamped to 0, as in the paper's plots.
    """
    if baseline_ipc <= 0:
        raise ValueError(f"baseline IPC must be positive, got {baseline_ipc}")
    if observed_ipc < 0:
        raise ValueError(f"observed IPC cannot be negative: {observed_ipc}")
    return max(0.0, 100.0 * (1.0 - observed_ipc / baseline_ipc))


def normalized_performance(baseline_ipc: float, observed_ipc: float) -> float:
    """Observed / baseline IPC (1.0 = unaffected), as in Figs 5-6."""
    if baseline_ipc <= 0:
        raise ValueError(f"baseline IPC must be positive, got {baseline_ipc}")
    if observed_ipc < 0:
        raise ValueError(f"observed IPC cannot be negative: {observed_ipc}")
    return observed_ipc / baseline_ipc


def slowdown_percent(baseline_time: float, observed_time: float) -> float:
    """Percent execution-time increase (Figs 8, 9)."""
    if baseline_time <= 0:
        raise ValueError(f"baseline time must be positive, got {baseline_time}")
    if observed_time < 0:
        raise ValueError(f"observed time cannot be negative: {observed_time}")
    return max(0.0, 100.0 * (observed_time / baseline_time - 1.0))


@dataclass(frozen=True)
class SeriesStats:
    """Summary statistics of a measurement series."""

    mean: float
    minimum: float
    maximum: float
    stddev: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "SeriesStats":
        if not values:
            raise ValueError("cannot summarise an empty series")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            minimum=min(values),
            maximum=max(values),
            stddev=variance ** 0.5,
        )

    @property
    def spread_percent(self) -> float:
        """(max - min) / mean, in percent — a predictability measure."""
        if self.mean == 0:
            return 0.0
        return 100.0 * (self.maximum - self.minimum) / self.mean
