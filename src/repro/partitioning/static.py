"""Static software cache partitioning (page coloring).

The second related-work category the paper positions against ([22, 23],
Zhang et al. EuroSys'09): reserve a slice of the LLC for each VM by
colouring its physical pages so its lines can only map into its slice.
Contention disappears by construction — at the price of rigidity (a VM
cannot use cache it didn't reserve, resizing means recolouring memory)
and of not being pay-per-use.

The model: a :class:`PartitionedLlcDomain` splits the occupancy domain
into per-owner private partitions plus one shared partition for
unallocated owners.  Each partition runs the same mean-field dynamics as
the global domain, but an owner's insertions can only evict within its
own partition — exactly the page-coloring guarantee.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.cachesim.occupancy import LlcOccupancyDomain


class PartitionedLlcDomain:
    """A colour-partitioned LLC: private slices + one shared remainder.

    Implements the same interface the machine simulation uses on
    :class:`~repro.cachesim.occupancy.LlcOccupancyDomain`, so it can be
    dropped into a socket with :func:`apply_page_coloring`.
    """

    def __init__(
        self,
        total_lines: float,
        allocations: Mapping[int, float],
    ) -> None:
        if total_lines <= 0:
            raise ValueError(f"total_lines must be positive, got {total_lines}")
        reserved = sum(allocations.values())
        if reserved > total_lines:
            raise ValueError(
                f"allocations ({reserved}) exceed the cache ({total_lines})"
            )
        if any(lines <= 0 for lines in allocations.values()):
            raise ValueError(f"allocations must be positive: {allocations}")
        self.total_lines = float(total_lines)
        self.allocations: Dict[int, float] = dict(allocations)
        self._private: Dict[int, LlcOccupancyDomain] = {
            owner: LlcOccupancyDomain(lines)
            for owner, lines in self.allocations.items()
        }
        shared_lines = total_lines - reserved
        self._shared: Optional[LlcOccupancyDomain] = (
            LlcOccupancyDomain(shared_lines) if shared_lines >= 1 else None
        )

    # -- queries (LlcOccupancyDomain interface) --------------------------------

    def occupancy_of(self, owner: int) -> float:
        if owner in self._private:
            return self._private[owner].occupancy_of(owner)
        if self._shared is not None:
            return self._shared.occupancy_of(owner)
        return 0.0

    @property
    def used_lines(self) -> float:
        used = sum(d.used_lines for d in self._private.values())
        if self._shared is not None:
            used += self._shared.used_lines
        return used

    @property
    def free_lines(self) -> float:
        return max(0.0, self.total_lines - self.used_lines)

    def owners(self) -> Iterable[int]:
        seen = []
        for domain in self._private.values():
            seen.extend(domain.owners())
        if self._shared is not None:
            seen.extend(self._shared.owners())
        return seen

    def snapshot(self) -> Dict[int, float]:
        snap: Dict[int, float] = {}
        for domain in self._private.values():
            snap.update(domain.snapshot())
        if self._shared is not None:
            snap.update(self._shared.snapshot())
        return snap

    # -- mutations ---------------------------------------------------------------

    def relax(
        self,
        pressures: Mapping[int, float],
        footprint_caps: Mapping[int, float],
        active: Optional[Iterable[int]] = None,
    ) -> None:
        """Each owner's insertions act only within its own partition."""
        active_set = set(pressures) if active is None else set(active)
        shared_pressures: Dict[int, float] = {}
        shared_caps: Dict[int, float] = {}
        for owner, pressure in pressures.items():
            if owner in self._private:
                self._private[owner].relax(
                    {owner: pressure},
                    {owner: footprint_caps.get(owner, self.total_lines)},
                    active=[owner],
                )
            else:
                shared_pressures[owner] = pressure
                shared_caps[owner] = footprint_caps.get(owner, self.total_lines)
        if shared_pressures:
            if self._shared is None:
                raise ValueError(
                    "owners without a colour allocation need a shared "
                    f"partition, but the colours consumed the whole cache: "
                    f"{sorted(shared_pressures)}"
                )
            shared_active = [o for o in active_set if o not in self._private]
            self._shared.relax(shared_pressures, shared_caps, active=shared_active)

    def flush_owner(self, owner: int) -> float:
        if owner in self._private:
            return self._private[owner].flush_owner(owner)
        if self._shared is not None:
            return self._shared.flush_owner(owner)
        return 0.0

    def reset(self) -> None:
        for domain in self._private.values():
            domain.reset()
        if self._shared is not None:
            self._shared.reset()


def apply_page_coloring(system, allocations_by_vm: Mapping) -> None:
    """Replace every socket's LLC domain with a colour-partitioned one.

    ``allocations_by_vm`` maps :class:`~repro.hypervisor.vm.VirtualMachine`
    objects to line counts; all vCPUs of a VM share its partition budget
    (split evenly).  VMs not listed share the remainder.
    """
    per_owner: Dict[int, float] = {}
    for vm, lines in allocations_by_vm.items():
        share = lines / len(vm.vcpus)
        for vcpu in vm.vcpus:
            per_owner[vcpu.gid] = share
    for socket_id, socket in enumerate(system.machine.sockets):
        old = system.llc_domains[socket_id]
        domain = PartitionedLlcDomain(old.total_lines, per_owner)
        system.llc_domains[socket_id] = domain
        socket.llc_domain = domain
