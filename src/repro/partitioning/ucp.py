"""Utility-based cache partitioning (UCP, Qureshi & Patt, MICRO 2006).

The hardware-partitioning baseline of the paper's related work: a runtime
mechanism monitors each application's miss curve and reallocates cache
ways to whoever gains the most hits per extra way (greedy marginal
utility).  Real UCP needs dedicated monitor circuits; here the utility
curves come from the calibrated behaviour model plus the measured access
rates — the same information the circuits estimate.

``UcpController`` repartitions every ``period_ticks`` by replacing the
socket's domain allocations (it drives a
:class:`~repro.partitioning.static.PartitionedLlcDomain` whose slices it
recomputes), preserving each owner's current occupancy up to the new
slice size.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.cachesim.perfmodel import CacheBehavior, hit_probability

from .static import PartitionedLlcDomain


def marginal_utility_allocation(
    total_lines: float,
    behaviors: Mapping[int, CacheBehavior],
    access_rates: Mapping[int, float],
    granularity: int = 32,
) -> Dict[int, float]:
    """Greedy lookahead allocation of ``total_lines`` among owners.

    Repeatedly hands the next ``total_lines / granularity`` chunk to the
    owner whose expected hit gain (hit-probability increase times its LLC
    access rate) is largest.  Owners with zero access rate get nothing.
    """
    if total_lines <= 0:
        raise ValueError(f"total_lines must be positive, got {total_lines}")
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    chunk = total_lines / granularity
    allocation: Dict[int, float] = {owner: 0.0 for owner in behaviors}
    for _ in range(granularity):
        best_owner = None
        best_gain = 0.0
        for owner, behavior in behaviors.items():
            rate = access_rates.get(owner, 0.0)
            if rate <= 0:
                continue
            current = allocation[owner]
            if current >= behavior.footprint_cap_lines:
                continue  # more cache is useless beyond the working set
            gain = (
                hit_probability(behavior, current + chunk)
                - hit_probability(behavior, current)
            ) * rate
            if gain > best_gain:
                best_gain = gain
                best_owner = owner
        if best_owner is None:
            break
        allocation[best_owner] += chunk
    return {owner: lines for owner, lines in allocation.items() if lines > 0}


class UcpController:
    """Periodic utility-based repartitioning of a socket's LLC."""

    def __init__(
        self,
        system,
        socket_id: int = 0,
        period_ticks: int = 30,
        granularity: int = 32,
        min_lines: float = 512.0,
    ) -> None:
        if period_ticks <= 0:
            raise ValueError(f"period_ticks must be positive, got {period_ticks}")
        self.system = system
        self.socket_id = socket_id
        self.period_ticks = period_ticks
        self.granularity = granularity
        self.min_lines = min_lines
        self.repartitions = 0
        self.last_allocation: Dict[int, float] = {}
        system.add_tick_observer(self._on_tick)

    def _socket_vcpus(self) -> List:
        cores = set(self.system.machine.spec.cores_of_socket(self.socket_id))
        return [
            vcpu
            for vcpu in self.system.vcpus
            if (vcpu.pinned_core in cores)
            or (vcpu.current_core in cores)
        ]

    def _on_tick(self, system, tick_index: int) -> None:
        if (tick_index + 1) % self.period_ticks != 0:
            return
        self.repartition()

    def repartition(self) -> Dict[int, float]:
        """Recompute and apply the allocation; returns it."""
        vcpus = self._socket_vcpus()
        if not vcpus:
            return {}
        behaviors = {
            vcpu.gid: vcpu.workload.behavior_at(vcpu.progress.instructions_done)
            for vcpu in vcpus
        }
        freq = self.system.freq_khz
        rates: Dict[int, float] = {}
        for vcpu in vcpus:
            cycles = self.system.last_tick_cycles.get(vcpu.gid, 0)
            if cycles > 0:
                ms = cycles / freq
                instructions = self.system.last_tick_instructions.get(
                    vcpu.gid, 0.0
                )
                # LLC accesses per ms over the last tick — the quantity
                # UCP's monitor circuit estimates per way.
                rates[vcpu.gid] = (
                    instructions * behaviors[vcpu.gid].lapki / 1000.0
                ) / ms
            else:
                rates[vcpu.gid] = 0.0
        domain = self.system.llc_domains[self.socket_id]
        total = domain.total_lines
        allocation = marginal_utility_allocation(
            total, behaviors, rates, self.granularity
        )
        # Guarantee a minimum slice to every running owner so nobody is
        # locked out entirely.
        for vcpu in vcpus:
            if rates[vcpu.gid] > 0:
                allocation.setdefault(vcpu.gid, self.min_lines)
        overshoot = sum(allocation.values()) - total
        if overshoot > 0:
            scale = total / (total + overshoot)
            allocation = {o: v * scale for o, v in allocation.items()}
        new_domain = PartitionedLlcDomain(total, allocation)
        # Carry occupancy into the new slices (clipped to slice size).
        old_snapshot = domain.snapshot()
        for owner, occ in old_snapshot.items():
            slice_lines = allocation.get(owner)
            if slice_lines is None:
                continue
            carried = min(occ, slice_lines)
            if carried > 0:
                new_domain._private[owner].insert(owner, carried)
        self.system.llc_domains[self.socket_id] = new_domain
        self.system.machine.sockets[self.socket_id].llc_domain = new_domain
        self.last_allocation = allocation
        self.repartitions += 1
        return allocation
