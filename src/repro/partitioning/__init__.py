"""Cache-partitioning baselines from the paper's related work: static
page coloring and utility-based cache partitioning (UCP)."""

from .static import PartitionedLlcDomain, apply_page_coloring
from .ucp import UcpController, marginal_utility_allocation

__all__ = [
    "PartitionedLlcDomain",
    "UcpController",
    "apply_page_coloring",
    "marginal_utility_allocation",
]
